"""The INUM cost model for one query.

Cache construction
    For every combination of interesting orders (one per relation, or
    none) and for nested-loop enabled/disabled — the paper's What-If
    Join component — the query is optimized once against *synthetic*
    hypothetical indexes that deliver exactly those orders, with real
    indexes hidden and parameterized paths disabled so each scan runs
    exactly once per loop. The plan cost then decomposes exactly::

        total = internal + Σ_rel loops(rel) × access_cost(rel)

    and ``internal`` (join/sort/aggregate work) is cached.

    Classification and restriction selectivities do not depend on the
    available indexes, so the query is prepared once and each
    per-combination optimizer call reuses that state with only the
    synthetic index lists swapped (``Planner.plan_prepared``).

Estimation
    ``estimate(config)`` computes, per relation, the best access cost
    achievable with the configuration's indexes (analytically, using the
    same ``cost_index_scan`` the optimizer uses) and takes the minimum
    over cache entries whose order requirements the configuration can
    satisfy. No optimizer call is made. Repeated estimates of the same
    configuration are served from a memo.

Sharing
    When a :class:`~repro.parallel.caches.CostCache` is supplied,
    Equation-1 index sizes, sequential-scan costs, and per-relation
    access costs are shared across every model built against the same
    catalog — the quantities are pure functions of (catalog version,
    restriction signature, index signature), so sharing is lossless.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Index, index_signature
from repro.catalog.sizing import estimate_index_pages
from repro.errors import PlannerError
from repro.optimizer.config import IndexInfo, PlannerConfig, RelationInfo
from repro.optimizer.cost import clamp_rows
from repro.optimizer.paths import (
    BaseRel,
    index_paths,
    match_index,
    seqscan_path,
)
from repro.optimizer.planner import Planner, PreparedQuery
from repro.optimizer.plans import NestLoop, Plan, Scan
from repro.sql.ast_nodes import ColumnRef
from repro.sql.binder import BoundQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine → model)
    from repro.parallel.caches import CostCache


@dataclass(frozen=True)
class CacheEntry:
    """One cached optimizer plan, decomposed."""

    order_vector: tuple[tuple[str, str | None], ...]  # (alias, order column)
    nestloop_enabled: bool
    internal_cost: float
    loops: tuple[tuple[str, float], ...]  # (alias, scan executions)
    plan: Plan

    def order_of(self, alias: str) -> str | None:
        for a, col in self.order_vector:
            if a == alias:
                return col
        return None

    def loops_of(self, alias: str) -> float:
        for a, value in self.loops:
            if a == alias:
                return value
        return 1.0


@dataclass
class InumStatistics:
    """Bookkeeping: how much optimizer work INUM saved."""

    optimizer_calls: int = 0
    estimates_served: int = 0
    cache_entries: int = 0
    # Number of interesting-order combinations dropped because the
    # product exceeded max_combinations — nonzero means the model's
    # fidelity is degraded and estimates may over-approximate.
    combinations_truncated: int = 0
    # Estimation-level memo: repeated estimate() calls for the same
    # configuration are served without re-scanning cache entries.
    estimate_cache_hits: int = 0
    # Per-relation access-cost lookups (local to this model).
    access_cache_hits: int = 0
    access_cache_misses: int = 0


@dataclass(frozen=True)
class InumSnapshot:
    """The picklable core of a built model (process-pool transport).

    Everything else a model holds (prepared state, access caches) is
    derived cheaply from (catalog, query, config) in the parent; only
    the optimizer-call results are worth shipping.
    """

    entries: tuple[CacheEntry, ...]
    optimizer_calls: int
    combinations_truncated: int


@dataclass(frozen=True)
class _AccessInfo:
    """Precomputed access characteristics of one candidate index."""

    cost: float
    provides: frozenset[str]  # order columns this access delivers
    rows: float


class InumModel:
    """INUM cost model for a single bound query."""

    def __init__(
        self,
        catalog: Catalog,
        query: BoundQuery,
        config: PlannerConfig | None = None,
        max_combinations: int = 32,
        cost_cache: "CostCache | None" = None,
    ) -> None:
        self._init_common(catalog, query, config, max_combinations, cost_cache)
        self._build_cache()

    @classmethod
    def from_snapshot(
        cls,
        catalog: Catalog,
        query: BoundQuery,
        config: PlannerConfig | None = None,
        *,
        snapshot: InumSnapshot,
        max_combinations: int = 32,
        cost_cache: "CostCache | None" = None,
    ) -> "InumModel":
        """Rehydrate a model from a snapshot built in another process.

        Skips every optimizer call; the resulting model estimates
        bit-identically to the one the snapshot was taken from.
        """
        model = cls.__new__(cls)
        model._init_common(catalog, query, config, max_combinations, cost_cache)
        model._entries = list(snapshot.entries)
        model.stats.optimizer_calls = snapshot.optimizer_calls
        model.stats.combinations_truncated = snapshot.combinations_truncated
        model.stats.cache_entries = len(model._entries)
        return model

    def _init_common(
        self,
        catalog: Catalog,
        query: BoundQuery,
        config: PlannerConfig | None,
        max_combinations: int,
        cost_cache: "CostCache | None",
    ) -> None:
        self._catalog = catalog
        self._query = query
        base = config or PlannerConfig()
        # Hide real indexes during cache construction and at estimation
        # time: the configuration under evaluation is the only physical
        # design INUM should see.
        self._config = base.with_flags(enable_parameterized_paths=False)
        self._max_combinations = max_combinations
        self._cost_cache = cost_cache
        self._config_fp = (
            cost_cache.fingerprint(self._config) if cost_cache is not None else None
        )
        self.stats = InumStatistics()

        self._stripped = self._strip_indexes(self._config)
        planner = Planner(catalog, self._stripped)
        self._prepared: PreparedQuery = planner.prepare(query)
        self._seq_costs: dict[str, float] = {}
        for alias, rel in self._prepared.base_rels.items():
            self._seq_costs[alias] = self._seq_cost(rel)
        self._orders = self._interesting_orders()
        self._tables = frozenset(entry.table.name for entry in query.rels)
        self._entries: list[CacheEntry] = []
        self._access_cache: dict[tuple[str, tuple[str, ...]], _AccessInfo] = {}
        self._estimate_cache: dict[tuple, tuple[float, dict[str, str | None]]] = {}
        # id()-keyed front for the estimate memo: advisors re-estimate
        # configurations built from a fixed candidate pool, so the tuple
        # of object ids is a cheap stable key (objects are pinned below
        # so an id can never be recycled while the model lives).
        self._fast_estimates: dict[tuple[int, ...], tuple[float, dict[str, str | None]]] = {}
        self._pinned_indexes: dict[int, Index] = {}
        # Per-entry (internal, ((alias, order, loops), ...)) rows,
        # compiled lazily on first estimate (entries may come from a
        # snapshot after __init__).
        self._compiled: list[tuple[float, tuple[tuple[str, str | None, float], ...]]] | None = None
        self._rel_keys: dict[str, tuple] = (
            {a: self._rel_signature(r) for a, r in self._prepared.base_rels.items()}
            if cost_cache is not None
            else {}
        )

    # ------------------------------------------------------------------
    # Cache construction

    def _strip_indexes(self, config: PlannerConfig) -> PlannerConfig:
        base_hook = config.relation_info_hook

        def hook(cfg: PlannerConfig, catalog: Catalog, table_name: str) -> RelationInfo:
            info = base_hook(cfg, catalog, table_name)
            return RelationInfo(
                table=info.table,
                row_count=info.row_count,
                page_count=info.page_count,
                indexes=(),
                column_stats=info.column_stats,
            )

        return config.with_hook(hook)

    def _seq_cost(self, rel: BaseRel) -> float:
        if self._cost_cache is None:
            return seqscan_path(self._config, rel).total_cost
        return self._cost_cache.seq_cost(
            self._catalog,
            self._config_fp,
            rel.table_name,
            len(rel.restrictions),
            lambda: seqscan_path(self._config, rel).total_cost,
        )

    def _rel_signature(self, rel: BaseRel) -> tuple:
        """What per-relation access costs depend on, besides the index.

        Restriction order matters (index matching takes the first
        equality per column), so the signature preserves it.
        """
        return (
            self._catalog.cache_key,
            self._config_fp,
            rel.table_name,
            tuple(repr(c.expr) for c in rel.restrictions),
            tuple(sorted(rel.required_columns)),
        )

    def _index_pages(self, info: RelationInfo, index: Index) -> int:
        if self._cost_cache is None:
            return estimate_index_pages(
                info.table, index, info.row_count, info.column_stats
            )
        return self._cost_cache.index_pages(
            self._catalog, info.table, index, info.row_count, info.column_stats
        )

    def _interesting_orders(self) -> dict[str, list[str]]:
        """Per-alias order columns worth caching plans for."""
        orders: dict[str, list[str]] = {a: [] for a in self._query.aliases}

        def note(alias: str | None, column: str) -> None:
            if alias in orders and column not in orders[alias]:
                orders[alias].append(column)

        for clause in self._prepared.join_clauses:
            if clause.equi_join is not None:
                (a1, c1), (a2, c2) = clause.equi_join
                note(a1, c1)
                note(a2, c2)
        stmt = self._query.statement
        for key in stmt.group_by:
            if isinstance(key, ColumnRef):
                note(key.table, key.column)
        for item in stmt.order_by:
            if isinstance(item.expr, ColumnRef):
                note(item.expr.table, item.expr.column)
        return orders

    def _combinations(self) -> list[tuple[tuple[str, str | None], ...]]:
        aliases = sorted(self._query.aliases)
        per_alias: list[list[str | None]] = []
        total = 1
        for alias in aliases:
            values: list[str | None] = [None] + self._orders[alias]
            per_alias.append(values)
            total *= len(values)
        combos = []
        for values in itertools.product(*per_alias):
            combos.append(tuple(zip(aliases, values)))
            if len(combos) >= self._max_combinations:
                break
        # Record degraded fidelity instead of capping silently: a
        # truncated order space means estimates over-approximate.
        self.stats.combinations_truncated = total - len(combos)
        return combos

    def _build_cache(self) -> None:
        for order_vector in self._combinations():
            for nestloop in (True, False):
                entry = self._optimize_atomic(order_vector, nestloop)
                if entry is not None:
                    self._entries.append(entry)
        self.stats.cache_entries = len(self._entries)

    def _optimize_atomic(
        self, order_vector: tuple[tuple[str, str | None], ...], nestloop: bool
    ) -> CacheEntry | None:
        synth: dict[str, list[Index]] = {}
        for alias, column in order_vector:
            if column is None:
                continue
            table_name = self._query.rel(alias).table.name
            synth.setdefault(table_name, []).append(
                Index(
                    name=f"inum_{table_name}_{column}",
                    table_name=table_name,
                    columns=(column,),
                    hypothetical=True,
                )
            )

        # Reuse the prepared state (classification, selectivities, row
        # estimates are index-independent); swap in the synthetic
        # indexes that deliver this combination's orders.
        base_rels: dict[str, BaseRel] = {}
        for alias, rel in self._prepared.base_rels.items():
            extra = []
            for index in synth.get(rel.table_name, []):
                extra.append(
                    IndexInfo(
                        definition=index,
                        leaf_pages=self._index_pages(rel.info, index),
                        height=1,
                        index_tuples=rel.info.row_count,
                    )
                )
            if extra:
                info = rel.info
                base_rels[alias] = BaseRel(
                    alias=rel.alias,
                    info=RelationInfo(
                        table=info.table,
                        row_count=info.row_count,
                        page_count=info.page_count,
                        indexes=tuple(extra),
                        column_stats=info.column_stats,
                    ),
                    restrictions=rel.restrictions,
                    required_columns=rel.required_columns,
                    rows=rel.rows,
                    width=rel.width,
                )
            else:
                base_rels[alias] = rel
        prepared = PreparedQuery(
            base_rels=base_rels,
            restrictions=self._prepared.restrictions,
            join_clauses=self._prepared.join_clauses,
        )

        config = self._stripped.with_flags(enable_nestloop=nestloop)
        try:
            plan = Planner(self._catalog, config).plan_prepared(
                self._query, prepared
            )
        except PlannerError:
            return None
        self.stats.optimizer_calls += 1

        scan_costs, loops = _decompose(plan)
        internal = plan.total_cost
        for alias, (cost, loop) in scan_costs.items():
            internal -= cost * loop
        return CacheEntry(
            order_vector=order_vector,
            nestloop_enabled=nestloop,
            internal_cost=internal,
            loops=tuple(sorted((a, l) for a, (_c, l) in scan_costs.items())),
            plan=plan,
        )

    # ------------------------------------------------------------------
    # Access costs

    def _access_info(self, alias: str, index: Index) -> _AccessInfo:
        key = (alias, index.columns)
        cached = self._access_cache.get(key)
        if cached is not None:
            self.stats.access_cache_hits += 1
            return cached
        self.stats.access_cache_misses += 1

        if self._cost_cache is not None:
            shared_key = (self._rel_keys[alias], index_signature(index))
            result = self._cost_cache.access_info(
                shared_key,
                lambda: self._compute_access_info(alias, index),
                catalog_key=self._catalog.cache_key,
            )
        else:
            result = self._compute_access_info(alias, index)
        self._access_cache[key] = result
        return result

    def _compute_access_info(self, alias: str, index: Index) -> _AccessInfo:
        rel: BaseRel = self._prepared.base_rels[alias]
        info = rel.info
        leaf_pages = self._index_pages(info, index)
        index_info = IndexInfo(
            definition=index,
            leaf_pages=leaf_pages,
            height=1,
            index_tuples=info.row_count,
        )
        shadow = RelationInfo(
            table=info.table,
            row_count=info.row_count,
            page_count=info.page_count,
            indexes=(index_info,),
            column_stats=info.column_stats,
        )
        shadow_rel = BaseRel(
            alias=rel.alias,
            info=shadow,
            restrictions=rel.restrictions,
            required_columns=rel.required_columns,
            rows=rel.rows,
            width=rel.width,
        )
        paths = index_paths(self._config, shadow_rel)
        if paths:
            cost = min(p.total_cost for p in paths)
        else:
            cost = float("inf")

        provides = self._orders_provided(rel, index_info)
        return _AccessInfo(cost=cost, provides=provides, rows=rel.rows)

    def _orders_provided(self, rel: BaseRel, index: IndexInfo) -> frozenset[str]:
        """Order columns this index can deliver for this query: a column
        is provided when every key column before it is pinned by an
        equality restriction."""
        eq_columns = {
            c.index_clause.column
            for c in rel.restrictions
            if c.index_clause is not None and c.index_clause.is_equality
        }
        provided = set()
        for column in index.columns:
            provided.add(column)
            if column not in eq_columns:
                # Not pinned by an equality: deeper key columns are only
                # sorted within runs, not globally.
                break
        return frozenset(provided)

    # ------------------------------------------------------------------
    # Estimation

    def estimate(self, config_indexes: list[Index] | tuple[Index, ...] = ()) -> float:
        """INUM cost of the query under ``config_indexes`` (no optimizer
        call)."""
        cost, _detail = self.estimate_detail(config_indexes)
        return cost

    def estimate_detail(
        self, config_indexes: list[Index] | tuple[Index, ...] = ()
    ) -> tuple[float, dict[str, str | None]]:
        """INUM cost plus which configuration index serves each relation
        (None = sequential scan) in the winning cache entry."""
        self.stats.estimates_served += 1
        fast_key = tuple(map(id, config_indexes))
        cached = self._fast_estimates.get(fast_key)
        if cached is not None:
            self.stats.estimate_cache_hits += 1
            cost, detail = cached
            return cost, dict(detail)
        for index in config_indexes:
            self._pinned_indexes[id(index)] = index

        # Indexes on tables this query never references cannot change
        # the estimate; dropping them up front also folds all such
        # configurations onto one memo entry.
        relevant = [
            ix for ix in config_indexes if ix.table_name in self._tables
        ]
        memo_key = tuple(sorted(index_signature(ix) for ix in relevant))
        cached = self._estimate_cache.get(memo_key)
        if cached is not None:
            self.stats.estimate_cache_hits += 1
            self._fast_estimates[fast_key] = cached
            cost, detail = cached
            return cost, dict(detail)

        per_alias_best, per_alias_ordered = self._best_access(relevant)

        if self._compiled is None:
            self._compiled = [
                (
                    entry.internal_cost,
                    tuple(
                        (alias, order, entry.loops_of(alias))
                        for alias, order in entry.order_vector
                    ),
                )
                for entry in self._entries
            ]

        inf = float("inf")
        best = inf
        best_detail: dict[str, str | None] = {}
        for internal, steps in self._compiled:
            total = internal
            usable = True
            detail: dict[str, str | None] = {}
            for alias, order, loops in steps:
                if order is None:
                    access, chosen = per_alias_best[alias]
                else:
                    access, chosen = per_alias_ordered.get(
                        (alias, order), (inf, None)
                    )
                    if access == inf:
                        usable = False
                        break
                detail[alias] = chosen
                total += loops * access
            if usable and total < best:
                best = total
                best_detail = detail
        result = (best, best_detail)
        self._estimate_cache[memo_key] = result
        self._fast_estimates[fast_key] = result
        return best, dict(best_detail)

    def estimate_batch(
        self, configs: Sequence[Sequence[Index]]
    ) -> np.ndarray:
        """INUM costs of many configurations as one array evaluation.

        Compiles this model's cache entries and the distinct indexes
        across ``configs`` into the flat array layout of
        :class:`~repro.inum.batch.WorkloadEvaluator` and evaluates every
        configuration as a gather + multiply-accumulate + segmented
        min. Each element is bit-identical to the scalar
        :meth:`estimate` of the same configuration — the arrays replay
        the exact float operation sequence, so the two paths are
        interchangeable anywhere recommendations are diffed.
        """
        from repro.inum.batch import WorkloadEvaluator

        pool: list[Index] = []
        seen: dict[tuple, int] = {}
        position_sets: list[list[int]] = []
        for config in configs:
            positions = []
            for index in config:
                sig = index_signature(index)
                slot = seen.get(sig)
                if slot is None:
                    slot = seen[sig] = len(pool)
                    pool.append(index)
                positions.append(slot)
            position_sets.append(positions)
        self.stats.estimates_served += len(position_sets)
        evaluator = WorkloadEvaluator([self], [1.0], pool)
        if not position_sets:
            return np.zeros(0)
        return evaluator.per_query_costs(position_sets)[0]

    def _best_access(
        self, config_indexes
    ) -> tuple[
        dict[str, tuple[float, str | None]],
        dict[tuple[str, str], tuple[float, str | None]],
    ]:
        by_table: dict[str, list[Index]] = {}
        for index in config_indexes:
            by_table.setdefault(index.table_name, []).append(index)

        best: dict[str, tuple[float, str | None]] = {}
        ordered: dict[tuple[str, str], tuple[float, str | None]] = {}
        access_cache = self._access_cache
        for entry in self._query.rels:
            alias = entry.alias
            best[alias] = (self._seq_costs[alias], None)
            for index in by_table.get(entry.table.name, []):
                info = access_cache.get((alias, index.columns))
                if info is not None:
                    self.stats.access_cache_hits += 1
                else:
                    info = self._access_info(alias, index)
                if info.cost < best[alias][0]:
                    best[alias] = (info.cost, index.name)
                for order_col in info.provides:
                    key = (alias, order_col)
                    if info.cost < ordered.get(key, (float("inf"), None))[0]:
                        ordered[key] = (info.cost, index.name)
        return best, ordered

    def optimizer_cost(self, config_indexes=()) -> float:
        """Ground truth: full optimizer call with the configuration
        simulated as what-if indexes (used to validate INUM's accuracy)."""
        stripped = self._strip_indexes(self._config)
        base_hook = stripped.relation_info_hook
        by_table: dict[str, list[Index]] = {}
        for index in config_indexes:
            by_table.setdefault(index.table_name, []).append(index)

        def hook(cfg: PlannerConfig, catalog: Catalog, table_name: str) -> RelationInfo:
            info = base_hook(cfg, catalog, table_name)
            extra = []
            for index in by_table.get(table_name, []):
                leaf_pages = estimate_index_pages(
                    info.table, index, info.row_count, info.column_stats
                )
                extra.append(
                    IndexInfo(
                        definition=index,
                        leaf_pages=leaf_pages,
                        height=1,
                        index_tuples=info.row_count,
                    )
                )
            return RelationInfo(
                table=info.table,
                row_count=info.row_count,
                page_count=info.page_count,
                indexes=tuple(extra),
                column_stats=info.column_stats,
            )

        config = stripped.with_hook(hook)
        plan = Planner(self._catalog, config).plan(self._query)
        return plan.total_cost

    def snapshot(self) -> InumSnapshot:
        """The picklable core of this model (see :class:`InumSnapshot`)."""
        return InumSnapshot(
            entries=tuple(self._entries),
            optimizer_calls=self.stats.optimizer_calls,
            combinations_truncated=self.stats.combinations_truncated,
        )

    @property
    def entries(self) -> list[CacheEntry]:
        return list(self._entries)

    @property
    def query(self) -> BoundQuery:
        return self._query

    @property
    def tables(self) -> frozenset[str]:
        """Table names the query references; indexes elsewhere are
        invisible to this model's estimates."""
        return self._tables

    @property
    def base_cost(self) -> float:
        """Cost with no indexes at all."""
        return self.estimate(())


def _decompose(plan: Plan) -> tuple[dict[str, tuple[float, float]], dict[str, float]]:
    """Per-alias (scan cost, loop count) decomposition of a plan.

    The inner side of a nested loop executes once per outer row; loop
    multipliers compound down the tree.
    """
    scans: dict[str, tuple[float, float]] = {}

    def walk(node: Plan, multiplier: float) -> None:
        if isinstance(node, Scan):
            scans[node.alias] = (node.total_cost, multiplier)
            return
        if isinstance(node, NestLoop):
            walk(node.outer, multiplier)
            walk(node.inner, multiplier * clamp_rows(node.outer.rows))
            return
        for child in node.children():
            walk(child, multiplier)

    walk(plan, 1.0)
    loops = {alias: loop for alias, (_cost, loop) in scans.items()}
    return scans, loops

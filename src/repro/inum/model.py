"""The INUM cost model for one query.

Cache construction
    For every combination of interesting orders (one per relation, or
    none) and for nested-loop enabled/disabled — the paper's What-If
    Join component — the query is optimized once against *synthetic*
    hypothetical indexes that deliver exactly those orders, with real
    indexes hidden and parameterized paths disabled so each scan runs
    exactly once per loop. The plan cost then decomposes exactly::

        total = internal + Σ_rel loops(rel) × access_cost(rel)

    and ``internal`` (join/sort/aggregate work) is cached.

Estimation
    ``estimate(config)`` computes, per relation, the best access cost
    achievable with the configuration's indexes (analytically, using the
    same ``cost_index_scan`` the optimizer uses) and takes the minimum
    over cache entries whose order requirements the configuration can
    satisfy. No optimizer call is made.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Index
from repro.catalog.sizing import estimate_index_pages
from repro.errors import PlannerError
from repro.optimizer.config import IndexInfo, PlannerConfig, RelationInfo
from repro.optimizer.cost import clamp_rows
from repro.optimizer.paths import (
    BaseRel,
    index_paths,
    match_index,
    seqscan_path,
)
from repro.optimizer.planner import Planner, PreparedQuery
from repro.optimizer.plans import NestLoop, Plan, Scan
from repro.sql.ast_nodes import ColumnRef
from repro.sql.binder import BoundQuery


@dataclass(frozen=True)
class CacheEntry:
    """One cached optimizer plan, decomposed."""

    order_vector: tuple[tuple[str, str | None], ...]  # (alias, order column)
    nestloop_enabled: bool
    internal_cost: float
    loops: tuple[tuple[str, float], ...]  # (alias, scan executions)
    plan: Plan

    def order_of(self, alias: str) -> str | None:
        for a, col in self.order_vector:
            if a == alias:
                return col
        return None

    def loops_of(self, alias: str) -> float:
        for a, value in self.loops:
            if a == alias:
                return value
        return 1.0


@dataclass
class InumStatistics:
    """Bookkeeping: how much optimizer work INUM saved."""

    optimizer_calls: int = 0
    estimates_served: int = 0
    cache_entries: int = 0


@dataclass(frozen=True)
class _AccessInfo:
    """Precomputed access characteristics of one candidate index."""

    cost: float
    provides: frozenset[str]  # order columns this access delivers
    rows: float


class InumModel:
    """INUM cost model for a single bound query."""

    def __init__(
        self,
        catalog: Catalog,
        query: BoundQuery,
        config: PlannerConfig | None = None,
        max_combinations: int = 32,
    ) -> None:
        self._catalog = catalog
        self._query = query
        base = config or PlannerConfig()
        # Hide real indexes during cache construction and at estimation
        # time: the configuration under evaluation is the only physical
        # design INUM should see.
        self._config = base.with_flags(enable_parameterized_paths=False)
        self._max_combinations = max_combinations
        self.stats = InumStatistics()

        planner = Planner(catalog, self._strip_indexes(self._config))
        self._prepared: PreparedQuery = planner.prepare(query)
        self._seq_costs: dict[str, float] = {}
        for alias, rel in self._prepared.base_rels.items():
            self._seq_costs[alias] = seqscan_path(self._config, rel).total_cost
        self._orders = self._interesting_orders()
        self._entries: list[CacheEntry] = []
        self._access_cache: dict[tuple[str, tuple[str, ...]], _AccessInfo] = {}
        self._build_cache()

    # ------------------------------------------------------------------
    # Cache construction

    def _strip_indexes(self, config: PlannerConfig) -> PlannerConfig:
        base_hook = config.relation_info_hook

        def hook(cfg: PlannerConfig, catalog: Catalog, table_name: str) -> RelationInfo:
            info = base_hook(cfg, catalog, table_name)
            return RelationInfo(
                table=info.table,
                row_count=info.row_count,
                page_count=info.page_count,
                indexes=(),
                column_stats=info.column_stats,
            )

        return config.with_hook(hook)

    def _interesting_orders(self) -> dict[str, list[str]]:
        """Per-alias order columns worth caching plans for."""
        orders: dict[str, list[str]] = {a: [] for a in self._query.aliases}

        def note(alias: str | None, column: str) -> None:
            if alias in orders and column not in orders[alias]:
                orders[alias].append(column)

        for clause in self._prepared.join_clauses:
            if clause.equi_join is not None:
                (a1, c1), (a2, c2) = clause.equi_join
                note(a1, c1)
                note(a2, c2)
        stmt = self._query.statement
        for key in stmt.group_by:
            if isinstance(key, ColumnRef):
                note(key.table, key.column)
        for item in stmt.order_by:
            if isinstance(item.expr, ColumnRef):
                note(item.expr.table, item.expr.column)
        return orders

    def _combinations(self) -> list[tuple[tuple[str, str | None], ...]]:
        aliases = sorted(self._query.aliases)
        per_alias: list[list[str | None]] = []
        for alias in aliases:
            per_alias.append([None] + self._orders[alias])
        combos = []
        for values in itertools.product(*per_alias):
            combos.append(tuple(zip(aliases, values)))
            if len(combos) >= self._max_combinations:
                break
        return combos

    def _build_cache(self) -> None:
        for order_vector in self._combinations():
            for nestloop in (True, False):
                entry = self._optimize_atomic(order_vector, nestloop)
                if entry is not None:
                    self._entries.append(entry)
        self.stats.cache_entries = len(self._entries)

    def _optimize_atomic(
        self, order_vector: tuple[tuple[str, str | None], ...], nestloop: bool
    ) -> CacheEntry | None:
        synth: dict[str, list[Index]] = {}
        for alias, column in order_vector:
            if column is None:
                continue
            table_name = self._query.rel(alias).table.name
            synth.setdefault(table_name, []).append(
                Index(
                    name=f"inum_{table_name}_{column}",
                    table_name=table_name,
                    columns=(column,),
                    hypothetical=True,
                )
            )

        stripped = self._strip_indexes(self._config)
        base_hook = stripped.relation_info_hook

        def hook(cfg: PlannerConfig, catalog: Catalog, table_name: str) -> RelationInfo:
            info = base_hook(cfg, catalog, table_name)
            extra = []
            for index in synth.get(table_name, []):
                leaf_pages = estimate_index_pages(
                    info.table, index, info.row_count, info.column_stats
                )
                extra.append(
                    IndexInfo(
                        definition=index,
                        leaf_pages=leaf_pages,
                        height=1,
                        index_tuples=info.row_count,
                    )
                )
            return RelationInfo(
                table=info.table,
                row_count=info.row_count,
                page_count=info.page_count,
                indexes=tuple(extra),
                column_stats=info.column_stats,
            )

        config = stripped.with_hook(hook).with_flags(enable_nestloop=nestloop)
        try:
            plan = Planner(self._catalog, config).plan(self._query)
        except PlannerError:
            return None
        self.stats.optimizer_calls += 1

        scan_costs, loops = _decompose(plan)
        internal = plan.total_cost
        for alias, (cost, loop) in scan_costs.items():
            internal -= cost * loop
        return CacheEntry(
            order_vector=order_vector,
            nestloop_enabled=nestloop,
            internal_cost=internal,
            loops=tuple(sorted((a, l) for a, (_c, l) in scan_costs.items())),
            plan=plan,
        )

    # ------------------------------------------------------------------
    # Access costs

    def _access_info(self, alias: str, index: Index) -> _AccessInfo:
        key = (alias, index.columns)
        cached = self._access_cache.get(key)
        if cached is not None:
            return cached

        rel: BaseRel = self._prepared.base_rels[alias]
        info = rel.info
        leaf_pages = estimate_index_pages(
            info.table, index, info.row_count, info.column_stats
        )
        index_info = IndexInfo(
            definition=index,
            leaf_pages=leaf_pages,
            height=1,
            index_tuples=info.row_count,
        )
        shadow = RelationInfo(
            table=info.table,
            row_count=info.row_count,
            page_count=info.page_count,
            indexes=(index_info,),
            column_stats=info.column_stats,
        )
        shadow_rel = BaseRel(
            alias=rel.alias,
            info=shadow,
            restrictions=rel.restrictions,
            required_columns=rel.required_columns,
            rows=rel.rows,
            width=rel.width,
        )
        paths = index_paths(self._config, shadow_rel)
        if paths:
            cost = min(p.total_cost for p in paths)
        else:
            cost = float("inf")

        provides = self._orders_provided(rel, index_info)
        result = _AccessInfo(cost=cost, provides=provides, rows=rel.rows)
        self._access_cache[key] = result
        return result

    def _orders_provided(self, rel: BaseRel, index: IndexInfo) -> frozenset[str]:
        """Order columns this index can deliver for this query: a column
        is provided when every key column before it is pinned by an
        equality restriction."""
        eq_columns = {
            c.index_clause.column
            for c in rel.restrictions
            if c.index_clause is not None and c.index_clause.is_equality
        }
        provided = set()
        for column in index.columns:
            provided.add(column)
            if column not in eq_columns:
                # Not pinned by an equality: deeper key columns are only
                # sorted within runs, not globally.
                break
        return frozenset(provided)

    # ------------------------------------------------------------------
    # Estimation

    def estimate(self, config_indexes: list[Index] | tuple[Index, ...] = ()) -> float:
        """INUM cost of the query under ``config_indexes`` (no optimizer
        call)."""
        cost, _detail = self.estimate_detail(config_indexes)
        return cost

    def estimate_detail(
        self, config_indexes: list[Index] | tuple[Index, ...] = ()
    ) -> tuple[float, dict[str, str | None]]:
        """INUM cost plus which configuration index serves each relation
        (None = sequential scan) in the winning cache entry."""
        self.stats.estimates_served += 1
        per_alias_best, per_alias_ordered = self._best_access(config_indexes)

        best = float("inf")
        best_detail: dict[str, str | None] = {}
        for entry in self._entries:
            total = entry.internal_cost
            usable = True
            detail: dict[str, str | None] = {}
            for alias, order in entry.order_vector:
                loops = entry.loops_of(alias)
                if order is None:
                    access, chosen = per_alias_best.get(
                        alias, (self._seq_costs[alias], None)
                    )
                else:
                    access, chosen = per_alias_ordered.get(
                        (alias, order), (float("inf"), None)
                    )
                    if access == float("inf"):
                        usable = False
                        break
                detail[alias] = chosen
                total += loops * access
            if usable and total < best:
                best = total
                best_detail = detail
        return best, best_detail

    def _best_access(
        self, config_indexes
    ) -> tuple[
        dict[str, tuple[float, str | None]],
        dict[tuple[str, str], tuple[float, str | None]],
    ]:
        by_table: dict[str, list[Index]] = {}
        for index in config_indexes:
            by_table.setdefault(index.table_name, []).append(index)

        best: dict[str, tuple[float, str | None]] = {}
        ordered: dict[tuple[str, str], tuple[float, str | None]] = {}
        for entry in self._query.rels:
            alias = entry.alias
            best[alias] = (self._seq_costs[alias], None)
            for index in by_table.get(entry.table.name, []):
                info = self._access_info(alias, index)
                if info.cost < best[alias][0]:
                    best[alias] = (info.cost, index.name)
                for order_col in info.provides:
                    key = (alias, order_col)
                    if info.cost < ordered.get(key, (float("inf"), None))[0]:
                        ordered[key] = (info.cost, index.name)
        return best, ordered

    def optimizer_cost(self, config_indexes=()) -> float:
        """Ground truth: full optimizer call with the configuration
        simulated as what-if indexes (used to validate INUM's accuracy)."""
        stripped = self._strip_indexes(self._config)
        base_hook = stripped.relation_info_hook
        by_table: dict[str, list[Index]] = {}
        for index in config_indexes:
            by_table.setdefault(index.table_name, []).append(index)

        def hook(cfg: PlannerConfig, catalog: Catalog, table_name: str) -> RelationInfo:
            info = base_hook(cfg, catalog, table_name)
            extra = []
            for index in by_table.get(table_name, []):
                leaf_pages = estimate_index_pages(
                    info.table, index, info.row_count, info.column_stats
                )
                extra.append(
                    IndexInfo(
                        definition=index,
                        leaf_pages=leaf_pages,
                        height=1,
                        index_tuples=info.row_count,
                    )
                )
            return RelationInfo(
                table=info.table,
                row_count=info.row_count,
                page_count=info.page_count,
                indexes=tuple(extra),
                column_stats=info.column_stats,
            )

        config = stripped.with_hook(hook)
        plan = Planner(self._catalog, config).plan(self._query)
        return plan.total_cost

    @property
    def entries(self) -> list[CacheEntry]:
        return list(self._entries)

    @property
    def query(self) -> BoundQuery:
        return self._query

    @property
    def base_cost(self) -> float:
        """Cost with no indexes at all."""
        return self.estimate(())


def _decompose(plan: Plan) -> tuple[dict[str, tuple[float, float]], dict[str, float]]:
    """Per-alias (scan cost, loop count) decomposition of a plan.

    The inner side of a nested loop executes once per outer row; loop
    multipliers compound down the tree.
    """
    scans: dict[str, tuple[float, float]] = {}

    def walk(node: Plan, multiplier: float) -> None:
        if isinstance(node, Scan):
            scans[node.alias] = (node.total_cost, multiplier)
            return
        if isinstance(node, NestLoop):
            walk(node.outer, multiplier)
            walk(node.inner, multiplier * clamp_rows(node.outer.rows))
            return
        for child in node.children():
            walk(child, multiplier)

    walk(plan, 1.0)
    loops = {alias: loop for alias, (_cost, loop) in scans.items()}
    return scans, loops

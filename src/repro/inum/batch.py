"""Vectorized INUM estimation over whole candidate pools.

The scalar :meth:`~repro.inum.model.InumModel.estimate` walks Python
loops twice per configuration — once over the configuration's indexes
to find each relation's best access cost, once over the cached plan
entries to pick the cheapest usable one. The advisors call it tens of
thousands of times per ``recommend`` (the benefit matrix prices every
(query, candidate) pair; the refinement hill-climb re-prices hundreds
of trial configurations against every model), which makes those loops
the system's innermost hot path.

This module compiles the *whole workload's* models into flat numpy
arrays once per candidate pool and evaluates configurations as array
reductions:

``slots``
    Every (model, alias) pair is one slot. A slot owns a sequential-
    scan cost and a vocabulary of interesting-order columns; its
    portion of the *access vector* ``V`` holds the best unordered
    access cost (position 0) and the best access cost delivering each
    order column (positions 1..O). ``V[0]`` is a dedicated zero used
    by ragged-row padding.
``PC``
    The pool-cost matrix: ``PC[l, p]`` is pool index ``p``'s
    contribution to access-vector position ``l`` (``inf`` when the
    index is on another table or cannot deliver the order). A
    configuration's access vector is then one masked column reduction:
    ``V = min(base, PC[:, positions].min(axis=1))``.
``rows``
    Every cached plan entry of every model is one row with its
    internal cost, per-alias loop counts, and per-alias indices into
    ``V``. Evaluating a configuration is a gather plus an
    alias-by-alias multiply-accumulate plus a per-model segmented min.

Bit-identity is a hard contract, not an aspiration: the accumulation
runs alias-by-alias in the same order as the scalar loop (one
elementwise FMA-free multiply-add per alias, never a pairwise
``sum``), the workload total accumulates query-by-query in workload
order, and padding contributes exactly ``0.0 * 0.0``. Every cost this
module produces equals the scalar path's to the last bit, which is
what lets the advisors keep their recommendation-diff regression gate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.catalog.schema import Index, index_signature

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (model → batch)
    from repro.inum.model import InumModel


class WorkloadEvaluator:
    """Array-compiled estimator for a fixed (models, candidate pool).

    Args:
        models: One built :class:`InumModel` per workload query, in
            workload order (the order fixes the float accumulation
            sequence of workload totals).
        weights: Query weights aligned with ``models``.
        pool: The candidate indexes configurations draw from;
            configurations are given as *positions* into this pool.
    """

    def __init__(
        self,
        models: Sequence["InumModel"],
        weights: Sequence[float],
        pool: Sequence[Index],
    ) -> None:
        if len(models) != len(weights):
            raise ValueError("models and weights must align")
        self._weights = [float(w) for w in weights]
        self._pool = list(pool)
        self._memo: dict[frozenset[int], float] = {}
        self._compile(models)

    # ------------------------------------------------------------------
    # Compilation

    def _compile(self, models: Sequence["InumModel"]) -> None:
        pool = self._pool
        n_pool = len(pool)
        offsets: list[int] = []  # V offset per slot
        base_parts: list[float] = [0.0]  # V[0] is the padding zero
        pc_rows: list[dict[int, float]] = [dict()]
        slot_meta: list[tuple[int, str]] = []  # (model position, alias)

        row_internal: list[float] = []
        row_loops: list[list[float]] = []
        row_vidx: list[list[int]] = []
        model_row_start: list[int] = []
        model_row_count: list[int] = []

        for m, model in enumerate(models):
            aliases = sorted(model._query.aliases)
            slot_of: dict[str, int] = {}
            vocab_of: dict[str, list[str]] = {}
            entries = model._entries

            # Order vocabulary per alias: the model's interesting
            # orders, extended by any order an entry mentions (entries
            # rehydrated from snapshots carry their own vectors).
            extra: dict[str, list[str]] = {a: [] for a in aliases}
            for entry in entries:
                for alias, order in entry.order_vector:
                    if (
                        order is not None
                        and order not in model._orders.get(alias, [])
                        and order not in extra[alias]
                    ):
                        extra[alias].append(order)

            for alias in aliases:
                vocab = list(model._orders.get(alias, [])) + extra[alias]
                vocab_of[alias] = vocab
                slot_of[alias] = len(offsets)
                slot_meta.append((m, alias))
                offsets.append(len(base_parts))
                base_parts.append(model._seq_costs[alias])
                base_parts.extend([np.inf] * len(vocab))
                table = model._query.rel(alias).table.name
                unordered: dict[int, float] = {}
                ordered: list[dict[int, float]] = [dict() for _ in vocab]
                for p, index in enumerate(pool):
                    if index.table_name != table:
                        continue
                    info = model._access_info(alias, index)
                    unordered[p] = info.cost
                    for k, order in enumerate(vocab):
                        if order in info.provides:
                            ordered[k][p] = info.cost
                pc_rows.append(unordered)
                pc_rows.extend(ordered)

            model_row_start.append(len(row_internal))
            for entry in entries:
                loops_row: list[float] = []
                vidx_row: list[int] = []
                for alias, order in entry.order_vector:
                    loops_row.append(entry.loops_of(alias))
                    off = offsets[slot_of[alias]]
                    if order is None:
                        vidx_row.append(off)
                    else:
                        vidx_row.append(
                            off + 1 + vocab_of[alias].index(order)
                        )
                row_internal.append(entry.internal_cost)
                row_loops.append(loops_row)
                row_vidx.append(vidx_row)
            model_row_count.append(len(entries))

        self._n_models = len(models)
        self._base = np.array(base_parts, dtype=np.float64)
        length = len(base_parts)
        self._pc = np.full((length, n_pool), np.inf, dtype=np.float64)
        for l, row in enumerate(pc_rows):
            for p, cost in row.items():
                self._pc[l, p] = cost

        n_rows = len(row_internal)
        amax = max((len(r) for r in row_loops), default=1)
        self._amax = max(1, amax)
        self._internal = np.array(row_internal, dtype=np.float64)
        self._loops = np.zeros((n_rows, self._amax), dtype=np.float64)
        # Padding gathers V[0] == 0.0 with loop count 0.0: the
        # accumulation sees exactly +0.0 for the ragged tail.
        self._vidx = np.zeros((n_rows, self._amax), dtype=np.int64)
        for r in range(n_rows):
            k = len(row_loops[r])
            self._loops[r, :k] = row_loops[r]
            self._vidx[r, :k] = row_vidx[r]

        nonempty = [m for m, count in enumerate(model_row_count) if count]
        self._nonempty_models = np.array(nonempty, dtype=np.int64)
        self._nonempty_starts = np.array(
            [model_row_start[m] for m in nonempty], dtype=np.int64
        )

    # ------------------------------------------------------------------
    # Evaluation

    def _access_vector(self, positions: Sequence[int]) -> np.ndarray:
        """The configuration's access vector ``V`` (length L)."""
        positions = list(dict.fromkeys(int(p) for p in positions))
        if not positions:
            return self._base
        return np.minimum(self._base, self._pc[:, positions].min(axis=1))

    def _matrix_costs(self, vectors: np.ndarray) -> np.ndarray:
        """Per-model costs for access vectors ``(L, C)`` → ``(M, C)``."""
        n_configs = vectors.shape[1]
        gathered = vectors[self._vidx]  # (R, Amax, C)
        totals = np.broadcast_to(
            self._internal[:, None], (self._internal.shape[0], n_configs)
        ).copy()
        for j in range(self._amax):
            totals += self._loops[:, j, None] * gathered[:, j, :]
        costs = np.full((self._n_models, n_configs), np.inf)
        if self._nonempty_starts.size:
            costs[self._nonempty_models] = np.minimum.reduceat(
                totals, self._nonempty_starts, axis=0
            )
        return costs

    def per_query_costs(
        self, configs: Sequence[Sequence[int]]
    ) -> np.ndarray:
        """Cost matrix ``(M, C)`` for arbitrary position-set configs."""
        if not configs:
            return np.zeros((self._n_models, 0))
        vectors = np.stack(
            [self._access_vector(positions) for positions in configs], axis=1
        )
        return self._matrix_costs(vectors)

    def base_costs(self) -> np.ndarray:
        """Per-model cost of the empty configuration ``(M,)``."""
        return self._matrix_costs(self._base[:, None])[:, 0]

    def singleton_costs(self) -> np.ndarray:
        """Cost matrix ``(M, P)`` of every one-index configuration."""
        if not self._pool:
            return np.zeros((self._n_models, 0))
        vectors = np.minimum(self._base[:, None], self._pc)
        return self._matrix_costs(vectors)

    def utilization_fractions(self) -> np.ndarray:
        """Index-utilization embedding ``(M, P)`` of the workload.

        Entry ``(q, p)`` is the fraction of query ``q``'s base cost
        that candidate ``p`` alone removes —
        ``(base - singleton) / base``, clipped to ``[0, 1]`` — i.e. how
        much query ``q`` *uses* candidate ``p``. Two queries with
        similar rows benefit from the same physical design, which is
        exactly the similarity the fleet clusterer partitions on. Costs
        come from the compiled arrays, so the whole embedding is two
        matrix evaluations regardless of workload or pool size.
        """
        if not self._pool:
            return np.zeros((self._n_models, 0))
        base = self.base_costs()[:, None]
        with np.errstate(invalid="ignore", divide="ignore"):
            fractions = (base - self.singleton_costs()) / base
        fractions = np.where(np.isfinite(fractions), fractions, 0.0)
        return np.clip(fractions, 0.0, 1.0)

    def extension_costs(
        self, positions: Sequence[int], extras: Sequence[int]
    ) -> np.ndarray:
        """Cost matrix ``(M, C)`` of ``positions + [extra]`` per extra.

        The greedy advisors' inner loop: every remaining candidate
        appended to the current configuration, evaluated in one shot.
        """
        if not len(extras):
            return np.zeros((self._n_models, 0))
        current = self._access_vector(positions)
        vectors = np.minimum(current[:, None], self._pc[:, list(extras)])
        return self._matrix_costs(vectors)

    def workload_totals(self, cost_matrix: np.ndarray) -> np.ndarray:
        """Weighted workload totals per config column ``(M, C) → (C,)``.

        Accumulates query-by-query in workload order — the same float
        addition sequence as ``sum(estimate(cfg) * w for ...)``.
        """
        totals = np.zeros(cost_matrix.shape[1])
        for m, weight in enumerate(self._weights):
            totals += cost_matrix[m] * weight
        return totals

    def workload_cost(self, positions: Sequence[int]) -> float:
        """Weighted workload cost of one configuration (memoized).

        The memo is keyed by the configuration's position *set* — the
        fix for the greedy-fallback re-pricing path, which used to
        re-evaluate identical configurations on every climb round.
        """
        key = frozenset(int(p) for p in positions)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        costs = self._matrix_costs(self._access_vector(positions)[:, None])
        total = 0.0
        for cost, weight in zip(costs[:, 0].tolist(), self._weights):
            total += cost * weight
        self._memo[key] = total
        return total

    def _memoize_columns(
        self, keys: Sequence[frozenset[int]], costs: np.ndarray
    ) -> None:
        """Store per-config workload totals, column by column.

        The accumulation is the same Python-float, query-by-query sum
        as :meth:`workload_cost`, and each column of ``costs`` is
        arithmetically independent of its neighbours, so priming a
        configuration in a batch yields the exact float a later
        individual evaluation would.
        """
        for c, key in enumerate(keys):
            total = 0.0
            for cost, weight in zip(costs[:, c].tolist(), self._weights):
                total += cost * weight
            self._memo[key] = total

    def prime(self, position_sets: Sequence[Sequence[int]]) -> None:
        """Batch-evaluate arbitrary configurations into the memo."""
        todo: dict[frozenset[int], Sequence[int]] = {}
        for positions in position_sets:
            key = frozenset(int(p) for p in positions)
            if key not in self._memo and key not in todo:
                todo[key] = positions
        if not todo:
            return
        vectors = np.stack(
            [self._access_vector(ps) for ps in todo.values()], axis=1
        )
        self._memoize_columns(list(todo), self._matrix_costs(vectors))

    def prime_extensions(
        self, positions: Sequence[int], extras: Sequence[int]
    ) -> None:
        """Batch-evaluate every ``positions + [extra]`` into the memo.

        ``min(V(positions), PC[:, e])`` equals ``V(positions + [e])``
        elementwise, so the speculative batch prices exactly what the
        hill-climb's add loop would price one call at a time.
        """
        base_key = frozenset(int(p) for p in positions)
        todo: dict[frozenset[int], int] = {}
        for extra in extras:
            key = base_key | {int(extra)}
            if key not in self._memo and key not in todo:
                todo[key] = int(extra)
        if not todo:
            return
        current = self._access_vector(positions)
        vectors = np.minimum(
            current[:, None], self._pc[:, list(todo.values())]
        )
        self._memoize_columns(list(todo), self._matrix_costs(vectors))

    def prime_swaps(
        self,
        positions: Sequence[int],
        pairs: Sequence[tuple[int, int]],
    ) -> None:
        """Batch-evaluate ``positions - {out} + {incoming}`` configs."""
        base_key = frozenset(int(p) for p in positions)
        vec_cache: dict[int, np.ndarray] = {}
        todo: dict[frozenset[int], np.ndarray] = {}
        for out, incoming in pairs:
            out, incoming = int(out), int(incoming)
            key = (base_key - {out}) | {incoming}
            if key in self._memo or key in todo:
                continue
            vector = vec_cache.get(out)
            if vector is None:
                vector = self._access_vector(
                    [p for p in positions if int(p) != out]
                )
                vec_cache[out] = vector
            todo[key] = np.minimum(vector, self._pc[:, incoming])
        if not todo:
            return
        vectors = np.stack(list(todo.values()), axis=1)
        self._memoize_columns(list(todo), self._matrix_costs(vectors))

    @property
    def pool(self) -> list[Index]:
        return list(self._pool)

    @property
    def memo_size(self) -> int:
        return len(self._memo)


def evaluator_for(
    models: Sequence["InumModel"],
    weights: Sequence[float],
    pool: Sequence[Index],
) -> WorkloadEvaluator:
    """Convenience constructor mirroring the advisors' call shape."""
    return WorkloadEvaluator(models, weights, pool)


def pool_signature(pool: Sequence[Index]) -> tuple:
    """Hashable identity of a candidate pool (for evaluator caching)."""
    return tuple(index_signature(ix) for ix in pool)

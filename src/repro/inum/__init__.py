"""INUM: efficient reuse of the query optimizer for physical design.

Reproduces Papadomanolakis, Dash & Ailamaki (VLDB 2007): cache a small
number of optimizer plans per query — one per combination of
"interesting orders" delivered to each relation, times the nested-loop
on/off toggle — then estimate the cost of *any* index configuration as
``internal_cost + Σ access_cost(chosen index per relation)`` without
calling the optimizer again. The ILP index advisor issues millions of
configuration evaluations; INUM turns each into a handful of dictionary
lookups.
"""

from repro.inum.batch import WorkloadEvaluator
from repro.inum.model import CacheEntry, InumModel, InumStatistics

__all__ = ["CacheEntry", "InumModel", "InumStatistics", "WorkloadEvaluator"]

"""What-if table (partition) simulation.

PostgreSQL has no native vertical partitions, so PARINDA simulates a
partition as a *new table* holding a subset of columns plus the parent's
primary key ("so that the full table can be reconstructed"). The shell
table is created empty — the parser must recognize it — and its
statistics are derived from the parent's at plan time, making the
planner believe the fragment exists with data on disk.
"""

from __future__ import annotations

from repro.catalog.schema import Table
from repro.catalog.sizing import estimate_heap_pages
from repro.catalog.statistics import RelationStatistics, TableStats
from repro.errors import WhatIfError


def make_partition_shell(
    parent: Table, columns: tuple[str, ...], name: str
) -> Table:
    """The shell table for a vertical fragment of ``parent``.

    The parent's primary-key columns are always included (prepended when
    absent from ``columns``), preserving reconstructability.
    """
    if not columns:
        raise WhatIfError("a partition needs at least one column")
    missing = [c for c in columns if not parent.has_column(c)]
    if missing:
        raise WhatIfError(
            f"columns {missing} do not exist in table {parent.name!r}"
        )
    ordered = tuple(parent.primary_key) + tuple(
        c for c in columns if c not in parent.primary_key
    )
    return parent.project(ordered, new_name=name)


def derive_partition_stats(
    parent: Table,
    parent_stats: RelationStatistics,
    shell: Table,
) -> RelationStatistics:
    """Statistics for a fragment, derived from the parent's statistics.

    Row count carries over (vertical partitioning keeps every row); the
    page count is re-estimated from the fragment's narrower tuple width
    — this is where partitioning's I/O benefit comes from. Column
    statistics are copied verbatim: the value distribution of a column
    does not change when it moves into a fragment.
    """
    row_count = parent_stats.table.row_count
    page_count = estimate_heap_pages(
        parent,
        row_count,
        column_stats=parent_stats.columns,
        columns=shell.column_names,
    )
    column_stats = {}
    for column in shell.column_names:
        if parent_stats.has_column(column):
            column_stats[column] = parent_stats.column(column)
    return RelationStatistics(
        table=TableStats(row_count=row_count, page_count=page_count),
        columns=column_stats,
    )

"""What-if physical design simulation (the paper's Section 3.2).

A :class:`WhatIfSession` layers hypothetical design features over a real
database without touching its data:

* **What-if indexes** exist purely as statistics — leaf page counts from
  the paper's Equation 1 — injected into the planner through the
  relation-info hook. The planner "cannot differentiate between the real
  design features and the what-if ones".
* **What-if tables** simulate partitions: empty shell tables registered
  in a cloned catalog (so the parser/binder recognize them) with
  statistics derived from the original table.
* **What-if joins** toggle the planner's ``enable_nestloop`` (and
  friends) — used by INUM to cache plan variants.
"""

from repro.whatif.session import WhatIfSession
from repro.whatif.tables import derive_partition_stats, make_partition_shell

__all__ = ["WhatIfSession", "derive_partition_stats", "make_partition_shell"]

"""The WhatIfSession: hypothetical indexes, tables, and join control.

The session owns a *cloned* catalog (what-if tables are added there so
the binder sees them) and installs a relation-info hook that appends
hypothetical index metadata — leaf pages from Equation 1 — to whatever
the base hook reports. Planning through the session is therefore
byte-for-byte the same code path as planning against real structures.

Incremental invalidation: plans produced through :meth:`plan` are
cached under a *design fingerprint* — the catalog version, the join-flag
epoch, and a per-table epoch bumped whenever a hypothetical index on
that table is added or dropped. Adding an index on ``specobj`` therefore
replans only the queries that reference ``specobj``; every other
cached plan keeps serving hits. Bound queries are likewise cached per
catalog version, so interactive loops re-parse nothing.
"""

from __future__ import annotations

import itertools
import time

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Index, Table, index_signature
from repro.catalog.sizing import estimate_index_pages
from repro.catalog.statistics import RelationStatistics
from repro.errors import WhatIfError
from repro.optimizer.config import IndexInfo, PlannerConfig, RelationInfo
from repro.optimizer.planner import Planner
from repro.optimizer.plans import Plan, indexes_used
from repro.sql.binder import BoundQuery, bind
from repro.sql.parser import parse_select
from repro.whatif.tables import derive_partition_stats, make_partition_shell

_name_counter = itertools.count(1)


class WhatIfSession:
    """A private what-if view over a base catalog.

    Args:
        catalog: The real catalog to layer on. Never mutated.
        config: Base planner configuration; enable flags set through
            :meth:`set_join_flags` are applied on top.
    """

    def __init__(self, catalog: Catalog, config: PlannerConfig | None = None) -> None:
        self._base_catalog = catalog
        self._catalog = catalog.clone()
        self._hypothetical: dict[str, list[Index]] = {}
        base_config = config or PlannerConfig()
        base_hook = base_config.relation_info_hook
        self._config = base_config.with_hook(self._make_hook(base_hook))
        self._simulation_seconds = 0.0
        # Incremental-invalidation state: per-table design epochs plus a
        # flags epoch; together with the catalog version they form the
        # design fingerprint each cached plan is keyed by.
        self._table_epochs: dict[str, int] = {}
        self._flags_epoch = 0
        self._bound_cache: dict[tuple, BoundQuery] = {}
        self._plan_cache: dict[object, tuple[BoundQuery, tuple, Plan]] = {}
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0

    # ------------------------------------------------------------------
    # What-if indexes

    def add_index(
        self,
        table_name: str,
        columns: tuple[str, ...] | list[str],
        name: str | None = None,
        unique: bool = False,
    ) -> Index:
        """Simulate an index; returns the hypothetical Index object.

        Only the statistics (Equation 1 leaf pages) are created — the
        call is O(1) regardless of table size, which is what makes
        interactive exploration feasible.
        """
        started = time.perf_counter()
        table = self._catalog.table(table_name)
        columns = tuple(columns)
        for column in columns:
            if not table.has_column(column):
                raise WhatIfError(
                    f"table {table_name!r} has no column {column!r}"
                )
        if name is None:
            name = f"whatif_{table_name}_{'_'.join(columns)}_{next(_name_counter)}"
        index = Index(
            name=name,
            table_name=table_name,
            columns=columns,
            unique=unique,
            hypothetical=True,
        )
        existing = self._hypothetical.setdefault(table_name, [])
        signatures = {index_signature(ix) for ix in existing}
        signatures.update(
            index_signature(ix) for ix in self._catalog.indexes_on(table_name)
        )
        if index_signature(index) in signatures:
            raise WhatIfError(
                f"an index on {table_name}({', '.join(columns)}) already exists "
                "in this session"
            )
        existing.append(index)
        self._touch(table_name)
        self._simulation_seconds += time.perf_counter() - started
        return index

    def drop_index(self, name: str) -> None:
        for table_name, indexes in self._hypothetical.items():
            for index in indexes:
                if index.name == name:
                    indexes.remove(index)
                    self._touch(table_name)
                    return
        raise WhatIfError(f"no hypothetical index named {name!r}")

    def clear_indexes(self) -> None:
        for table_name in list(self._hypothetical):
            self._touch(table_name)
        self._hypothetical.clear()

    @property
    def hypothetical_indexes(self) -> list[Index]:
        return [ix for indexes in self._hypothetical.values() for ix in indexes]

    def index_size_pages(self, index: Index) -> int:
        """Equation 1 size of a session index (leaf pages)."""
        table = self._catalog.table(index.table_name)
        stats = self._catalog.statistics(index.table_name)
        return estimate_index_pages(
            table, index, stats.table.row_count, stats.columns
        )

    # ------------------------------------------------------------------
    # What-if tables (partitions)

    def add_partition_table(
        self, parent_name: str, columns: tuple[str, ...] | list[str], name: str
    ) -> Table:
        """Simulate a vertical fragment of ``parent_name`` as a new table.

        The shell is registered in the session catalog (parser-visible,
        per the paper) and derived statistics are injected so the planner
        treats it as a populated table.
        """
        started = time.perf_counter()
        parent = self._catalog.table(parent_name)
        parent_stats = self._catalog.statistics(parent_name)
        shell = make_partition_shell(parent, tuple(columns), name)
        stats = derive_partition_stats(parent, parent_stats, shell)
        self._catalog.add_table(shell)
        self._catalog.set_statistics(shell.name, stats)
        self._simulation_seconds += time.perf_counter() - started
        return shell

    def add_table(self, table: Table, stats: RelationStatistics) -> None:
        """Register an arbitrary what-if table with explicit statistics."""
        self._catalog.add_table(table)
        self._catalog.set_statistics(table.name, stats)

    def drop_table(self, name: str) -> None:
        self._catalog.drop_table(name)

    # ------------------------------------------------------------------
    # What-if joins

    def set_join_flags(self, **flags: bool) -> None:
        """Toggle enable_* planner flags (e.g. ``enable_nestloop=False``)."""
        valid = {
            "enable_nestloop",
            "enable_hashjoin",
            "enable_mergejoin",
            "enable_seqscan",
            "enable_indexscan",
            "enable_indexonlyscan",
        }
        unknown = set(flags) - valid
        if unknown:
            raise WhatIfError(f"unknown planner flags: {sorted(unknown)}")
        self._config = self._config.with_flags(**flags)
        # Flags affect every plan: global epoch rather than per-table.
        self._flags_epoch += 1

    # ------------------------------------------------------------------
    # Planning

    @property
    def catalog(self) -> Catalog:
        return self._catalog

    @property
    def config(self) -> PlannerConfig:
        return self._config

    @property
    def simulation_seconds(self) -> float:
        """Wall-clock time spent creating what-if structures (E4)."""
        return self._simulation_seconds

    def planner(self) -> Planner:
        return Planner(self._catalog, self._config)

    def bind_sql(self, sql: str) -> BoundQuery:
        """Parse+bind ``sql``, cached per catalog version."""
        key = (self._catalog.cache_key, sql)
        cached = self._bound_cache.get(key)
        if cached is None:
            cached = bind(self._catalog, parse_select(sql))
            self._bound_cache[key] = cached
        return cached

    def design_fingerprint(self, query: BoundQuery) -> tuple:
        """What a cached plan for ``query`` depends on: the catalog
        version, the join-flag epoch, and the design epochs of exactly
        the tables the query references. A hypothetical index on any
        other table leaves this fingerprint — and the cached plan —
        untouched."""
        tables = sorted({entry.table.name for entry in query.rels})
        return (
            self._catalog.cache_key,
            self._flags_epoch,
            tuple((t, self._table_epochs.get(t, 0)) for t in tables),
        )

    def plan(self, query: BoundQuery | str) -> Plan:
        if isinstance(query, str):
            key: object = query
            query = self.bind_sql(query)
        else:
            # The cache entry pins the bound query, so its id cannot be
            # reused while the entry is alive; identity check below.
            key = id(query)
        fingerprint = self.design_fingerprint(query)
        entry = self._plan_cache.get(key)
        if entry is not None:
            cached_query, cached_fp, cached_plan = entry
            if cached_fp == fingerprint and (
                isinstance(key, str) or cached_query is query
            ):
                self.plan_cache_hits += 1
                return cached_plan
        self.plan_cache_misses += 1
        plan = self.planner().plan(query)
        self._plan_cache[key] = (query, fingerprint, plan)
        return plan

    def cost(self, query: BoundQuery | str) -> float:
        return self.plan(query).total_cost

    def hypothetical_indexes_used(self, query: BoundQuery | str) -> list[str]:
        """Names of session indexes the optimizer picked for ``query``."""
        plan = self.plan(query)
        hypo_names = {ix.name for ix in self.hypothetical_indexes}
        return sorted(
            name for name in indexes_used(plan).values() if name in hypo_names
        )

    # ------------------------------------------------------------------

    def _touch(self, table_name: str) -> None:
        self._table_epochs[table_name] = self._table_epochs.get(table_name, 0) + 1

    def _make_hook(self, base_hook):
        def hook(config: PlannerConfig, catalog: Catalog, table_name: str) -> RelationInfo:
            info = base_hook(config, catalog, table_name)
            extra = self._hypothetical.get(table_name)
            if not extra:
                return info
            added = []
            for index in extra:
                leaf_pages = estimate_index_pages(
                    info.table, index, info.row_count, info.column_stats
                )
                added.append(
                    IndexInfo(
                        definition=index,
                        leaf_pages=leaf_pages,
                        height=_height_for(leaf_pages),
                        index_tuples=info.row_count,
                    )
                )
            return RelationInfo(
                table=info.table,
                row_count=info.row_count,
                page_count=info.page_count,
                indexes=info.indexes + tuple(added),
                column_stats=info.column_stats,
            )

        return hook


def _height_for(leaf_pages: int) -> int:
    height = 0
    pages = leaf_pages
    while pages > 1:
        pages = (pages + 255) // 256
        height += 1
    return height

"""Aggregate accumulators: count/sum/avg/min/max with DISTINCT support."""

from __future__ import annotations

from typing import Any

from repro.errors import ExecutorError
from repro.sql.ast_nodes import FuncCall, Star
from repro.sql.expressions import RowContext, evaluate


class AggregateAccumulator:
    """Accumulates one aggregate function over a group's rows."""

    def __init__(self, call: FuncCall) -> None:
        if not call.is_aggregate:
            raise ExecutorError(f"{call.name} is not an aggregate")
        self._call = call
        self._count = 0
        self._sum: float | None = None
        self._min: Any = None
        self._max: Any = None
        self._distinct_seen: set[Any] | None = set() if call.distinct else None
        self._is_count_star = bool(call.args) and isinstance(call.args[0], Star)
        if call.name == "count" and not call.args:
            self._is_count_star = True

    def add(self, row: RowContext) -> None:
        if self._is_count_star:
            self._count += 1
            return
        if not self._call.args:
            raise ExecutorError(f"{self._call.name}() needs an argument")
        value = evaluate(self._call.args[0], row)
        if value is None:
            return  # aggregates skip NULLs
        if self._distinct_seen is not None:
            if value in self._distinct_seen:
                return
            self._distinct_seen.add(value)
        self._count += 1
        if self._call.name in ("sum", "avg"):
            self._sum = value if self._sum is None else self._sum + value
        if self._call.name == "min":
            self._min = value if self._min is None else min(self._min, value)
        if self._call.name == "max":
            self._max = value if self._max is None else max(self._max, value)

    def result(self) -> Any:
        name = self._call.name
        if name == "count":
            return self._count
        if name == "sum":
            return self._sum
        if name == "avg":
            if self._count == 0 or self._sum is None:
                return None
            return self._sum / self._count
        if name == "min":
            return self._min
        if name == "max":
            return self._max
        raise ExecutorError(f"unknown aggregate {name!r}")

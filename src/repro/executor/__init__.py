"""Volcano-style executor running physical plans over stored data.

The executor exists to *ground* the what-if machinery: materialized
designs are executed for real (with page-level I/O accounting), so the
simulated-vs-materialized comparisons of the demo's interactive scenario
compare against actual behaviour, not another estimate.
"""

from repro.executor.executor import ExecutionResult, ExecutionStats, execute
from repro.executor.aggregates import AggregateAccumulator

__all__ = ["AggregateAccumulator", "ExecutionResult", "ExecutionStats", "execute"]

"""Plan execution with page-level I/O accounting.

Rows flow through the operator tree as *contexts*: dictionaries keyed by
``(alias, column)`` below aggregation, augmented with expression-keyed
entries above it (so ORDER BY over aggregate outputs can resolve). The
:class:`ExecutionStats` counter tracks heap and index page reads — a
sequential scan charges every heap page once, an index scan charges leaf
pages plus one heap page per fetched row *unless* the row lands on the
page read immediately before (which is how clustered/correlated access
gets its discount in reality).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import ExecutorError
from repro.executor.aggregates import AggregateAccumulator
from repro.resilience import faults
from repro.optimizer.clauses import extract_index_clause, prefix_upper_bound
from repro.optimizer.plans import (
    Aggregate,
    HashJoin,
    IndexScan,
    Limit,
    MergeJoin,
    NestLoop,
    Plan,
    Project,
    SeqScan,
    Sort,
)
from repro.sql.ast_nodes import ColumnRef, Expr, FuncCall, SelectItem
from repro.sql.expressions import evaluate, is_true
from repro.sql.printer import expr_to_sql
from repro.storage.database import Database

Row = dict[Any, Any]


class _PageCache:
    """A small LRU buffer cache shared by one execution.

    Page reads that hit the cache are free, as they would be against a
    real buffer pool — without this, a clustered-but-jittered index scan
    (heap pages A,B,A,B,...) would be charged one fault per row and
    look worse than a sequential scan even when it touches 10x fewer
    distinct pages.
    """

    __slots__ = ("_capacity", "_pages")

    def __init__(self, capacity: int = 256) -> None:
        self._capacity = capacity
        self._pages: dict[tuple, None] = {}

    def access(self, key: tuple) -> bool:
        """Touch a page; returns True when the access faults (a read)."""
        if key in self._pages:
            self._pages.pop(key)  # move to MRU position
            self._pages[key] = None
            return False
        self._pages[key] = None
        if len(self._pages) > self._capacity:
            oldest = next(iter(self._pages))
            self._pages.pop(oldest)
        return True


@dataclass
class ExecutionStats:
    """I/O and row counters accumulated during one execution.

    ``fault_injector`` is the already-resolved injector for this
    execution (``execute`` resolves explicit-vs-ambient once up front);
    when set, every heap page *fault* — an access the page cache does
    not absorb — passes through the ``page.read`` fault point, the
    storage failure surface of real scans.
    """

    heap_pages_read: int = 0
    index_pages_read: int = 0
    rows_scanned: int = 0
    rows_output: int = 0
    index_probes: int = 0
    cache: _PageCache = field(default_factory=_PageCache)
    fault_injector: Any = None

    def read_heap_page(self, table: str, page: int) -> None:
        if self.cache.access(("heap", table, page)):
            if self.fault_injector is not None:
                self.fault_injector.check("page.read", f"{table}:{page}")
            self.heap_pages_read += 1

    def read_index_page(self, index: str, page: int) -> None:
        if self.cache.access(("index", index, page)):
            self.index_pages_read += 1

    @property
    def total_pages_read(self) -> int:
        return self.heap_pages_read + self.index_pages_read


@dataclass
class ExecutionResult:
    """Rows plus metadata from executing a plan."""

    columns: list[str]
    rows: list[tuple]
    stats: ExecutionStats = field(default_factory=ExecutionStats)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutorError(
                f"scalar() needs a 1x1 result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def column(self, name: str) -> list:
        """Values of one output column, by exact name or bare-column name."""
        if name in self.columns:
            idx = self.columns.index(name)
        else:
            matches = [
                i for i, c in enumerate(self.columns) if c.endswith(f".{name}")
            ]
            if len(matches) != 1:
                raise ExecutorError(
                    f"column {name!r} not found (have: {self.columns})"
                )
            idx = matches[0]
        return [row[idx] for row in self.rows]


def execute(
    db: Database, plan: Plan, fault_injector: Any = None
) -> ExecutionResult:
    """Run ``plan`` against ``db`` and collect its output rows.

    ``fault_injector`` (explicit, else the ambient ``REPRO_FAULTS``
    one) is resolved once here and carried on the stats object, so the
    per-page hot path pays a plain attribute check when no injector is
    active.
    """
    stats = ExecutionStats(fault_injector=faults.resolve(fault_injector))
    rows = list(_run(db, plan, stats))
    output = _output_items(plan)
    if output is None:
        raise ExecutorError("plan has no projection/aggregation root")
    columns = [item.alias or expr_to_sql(item.expr) for item in output]
    tuples = []
    for row in rows:
        tuples.append(tuple(_resolve_output(item.expr, row) for item in output))
    stats.rows_output = len(tuples)
    return ExecutionResult(columns=columns, rows=tuples, stats=stats)


def _output_items(plan: Plan) -> tuple[SelectItem, ...] | None:
    if isinstance(plan, (Project, Aggregate)):
        return plan.output
    for child in plan.children():
        found = _output_items(child)
        if found is not None:
            return found
    return None


def _resolve_output(expr: Expr, row: Row) -> Any:
    if expr in row:
        return row[expr]
    return evaluate(expr, row)


# ----------------------------------------------------------------------
# Operator dispatch


def _run(db: Database, plan: Plan, stats: ExecutionStats) -> Iterator[Row]:
    if isinstance(plan, SeqScan):
        return _run_seqscan(db, plan, stats)
    if isinstance(plan, IndexScan):
        return _run_indexscan(db, plan, stats, bindings=None)
    if isinstance(plan, NestLoop):
        return _run_nestloop(db, plan, stats)
    if isinstance(plan, HashJoin):
        return _run_hashjoin(db, plan, stats)
    if isinstance(plan, MergeJoin):
        return _run_mergejoin(db, plan, stats)
    if isinstance(plan, Sort):
        return _run_sort(db, plan, stats)
    if isinstance(plan, Aggregate):
        return _run_aggregate(db, plan, stats)
    if isinstance(plan, Project):
        return _run_project(db, plan, stats)
    if isinstance(plan, Limit):
        return _run_limit(db, plan, stats)
    raise ExecutorError(f"no executor for node {plan.node_name}")


def _run_seqscan(db: Database, plan: SeqScan, stats: ExecutionStats) -> Iterator[Row]:
    relation = db.relation(plan.table_name)
    heap = relation.heap
    names = relation.table.column_names
    columns = {name: heap.column(name) for name in names}
    alias = plan.alias
    if heap.row_count == 0:
        stats.read_heap_page(plan.table_name, 0)
    for row_idx in heap.scan():
        stats.read_heap_page(plan.table_name, heap.page_of(row_idx))
        stats.rows_scanned += 1
        row: Row = {(alias, name): columns[name][row_idx] for name in names}
        if all(is_true(evaluate(q, row)) for q in plan.filter_quals):
            yield row


def _run_indexscan(
    db: Database,
    plan: IndexScan,
    stats: ExecutionStats,
    bindings: Row | None,
) -> Iterator[Row]:
    if plan.hypothetical:
        raise ExecutorError(
            f"hypothetical index {plan.index_name!r} cannot be executed; "
            "what-if designs are simulation-only"
        )
    btree = db.btree(plan.index_name)
    relation = db.relation(plan.table_name)
    heap = relation.heap
    alias = plan.alias
    names = relation.table.column_names
    columns = {name: heap.column(name) for name in names}

    probes = _index_probes(plan, bindings)
    stats.index_probes += len(probes)
    for low, high, low_inc, high_inc in probes:
        for row_id, leaf_page in btree.search_range(low, high, low_inc, high_inc):
            stats.read_index_page(plan.index_name, leaf_page)
            stats.rows_scanned += 1
            if plan.index_only:
                row = {
                    (alias, col): columns[col][row_id] for col in plan.index_columns
                }
            else:
                stats.read_heap_page(plan.table_name, heap.page_of(row_id))
                row = {(alias, name): columns[name][row_id] for name in names}
            if bindings is not None:
                row = {**bindings, **row}
            if all(is_true(evaluate(q, row)) for q in plan.index_quals):
                if all(is_true(evaluate(q, row)) for q in plan.filter_quals):
                    yield row


def _index_probes(
    plan: IndexScan, bindings: Row | None
) -> list[tuple[tuple | None, tuple | None, bool, bool]]:
    """Derive B-Tree probe ranges from index (and parameterized) quals.

    Returns a list of (low, high, low_inclusive, high_inclusive) probes
    over key prefixes; IN clauses expand into one probe per value.
    """
    eq_by_column: dict[str, Any] = {}
    terminal: tuple[str, str, tuple] | None = None  # (column, op, values)

    for expr in plan.index_quals:
        clause = extract_index_clause(expr, plan.alias)
        if clause is None:
            continue  # safety: treated as filter by the executor anyway
        if clause.op == "=":
            eq_by_column[clause.column] = clause.values[0]
        else:
            terminal = (clause.column, clause.op, clause.values)

    for column, outer_expr in plan.ref_quals:
        if bindings is None:
            raise ExecutorError(
                f"parameterized scan on {plan.index_name!r} executed without "
                "outer bindings"
            )
        eq_by_column[column] = evaluate(outer_expr, bindings)

    prefix: list[Any] = []
    for column in plan.index_columns:
        if column in eq_by_column:
            prefix.append(eq_by_column[column])
            continue
        if terminal is not None and terminal[0] == column:
            return _terminal_probes(tuple(prefix), terminal)
        break
    if not prefix and terminal is None:
        return [(None, None, True, True)]  # full index scan
    key = tuple(prefix)
    return [(key, key, True, True)]


def _terminal_probes(
    prefix: tuple, terminal: tuple[str, str, tuple]
) -> list[tuple[tuple | None, tuple | None, bool, bool]]:
    _column, op, values = terminal
    if op == "between":
        return [(prefix + (values[0],), prefix + (values[1],), True, True)]
    if op == "in":
        return [(prefix + (v,), prefix + (v,), True, True) for v in values]
    if op == "like_prefix":
        prefix_value = str(values[0])
        return [
            (
                prefix + (prefix_value,),
                prefix + (prefix_upper_bound(prefix_value),),
                True,
                False,
            )
        ]
    value = values[0]
    if op == "<":
        return [(prefix if prefix else None, prefix + (value,), True, False)]
    if op == "<=":
        return [(prefix if prefix else None, prefix + (value,), True, True)]
    if op == ">":
        return [(prefix + (value,), prefix if prefix else None, False, True)]
    if op == ">=":
        return [(prefix + (value,), prefix if prefix else None, True, True)]
    raise ExecutorError(f"unsupported index operator {op!r}")


def _run_nestloop(db: Database, plan: NestLoop, stats: ExecutionStats) -> Iterator[Row]:
    inner = plan.inner
    parameterized = isinstance(inner, IndexScan) and inner.ref_quals
    outer_rows = _run(db, plan.outer, stats)
    if parameterized:
        for outer_row in outer_rows:
            for row in _run_indexscan(db, inner, stats, bindings=outer_row):
                merged = row  # bindings already merged inside the scan
                if all(is_true(evaluate(q, merged)) for q in plan.join_quals):
                    yield merged
    else:
        inner_materialized = list(_run(db, inner, stats))
        for outer_row in outer_rows:
            for inner_row in inner_materialized:
                merged = {**outer_row, **inner_row}
                if all(is_true(evaluate(q, merged)) for q in plan.join_quals):
                    yield merged


def _run_hashjoin(db: Database, plan: HashJoin, stats: ExecutionStats) -> Iterator[Row]:
    table: dict[tuple, list[Row]] = {}
    for inner_row in _run(db, plan.inner, stats):
        key = tuple(evaluate(k, inner_row) for _, k in plan.hash_keys)
        if any(v is None for v in key):
            continue  # NULL never joins
        table.setdefault(key, []).append(inner_row)
    for outer_row in _run(db, plan.outer, stats):
        key = tuple(evaluate(k, outer_row) for k, _ in plan.hash_keys)
        if any(v is None for v in key):
            continue
        for inner_row in table.get(key, ()):
            merged = {**outer_row, **inner_row}
            if all(is_true(evaluate(q, merged)) for q in plan.join_quals):
                yield merged


def _run_mergejoin(db: Database, plan: MergeJoin, stats: ExecutionStats) -> Iterator[Row]:
    outer_key_exprs = [a for a, _ in plan.merge_keys]
    inner_key_exprs = [b for _, b in plan.merge_keys]

    def key_of(row: Row, exprs: list[Expr]) -> tuple:
        return tuple(_sortable(evaluate(e, row)) for e in exprs)

    outer_rows = sorted(
        (r for r in _run(db, plan.outer, stats)),
        key=lambda r: key_of(r, outer_key_exprs),
    )
    inner_rows = sorted(
        (r for r in _run(db, plan.inner, stats)),
        key=lambda r: key_of(r, inner_key_exprs),
    )

    i = j = 0
    while i < len(outer_rows) and j < len(inner_rows):
        ko = key_of(outer_rows[i], outer_key_exprs)
        ki = key_of(inner_rows[j], inner_key_exprs)
        if any(part[0] == 1 for part in ko):  # NULL keys never join
            i += 1
            continue
        if any(part[0] == 1 for part in ki):
            j += 1
            continue
        if ko < ki:
            i += 1
        elif ko > ki:
            j += 1
        else:
            # Gather the duplicate blocks on both sides.
            i_end = i
            while i_end < len(outer_rows) and key_of(outer_rows[i_end], outer_key_exprs) == ko:
                i_end += 1
            j_end = j
            while j_end < len(inner_rows) and key_of(inner_rows[j_end], inner_key_exprs) == ki:
                j_end += 1
            for oi in range(i, i_end):
                for ji in range(j, j_end):
                    merged = {**outer_rows[oi], **inner_rows[ji]}
                    if all(is_true(evaluate(q, merged)) for q in plan.join_quals):
                        yield merged
            i, j = i_end, j_end


def _sortable(value: Any) -> tuple:
    """Totally ordered key part: (null_flag, value)."""
    if value is None:
        return (1, 0)
    if isinstance(value, bool):
        return (0, int(value))
    return (0, value)


def _run_sort(db: Database, plan: Sort, stats: ExecutionStats) -> Iterator[Row]:
    rows = list(_run(db, plan.child, stats))

    def sort_key(row: Row):
        parts = []
        for item in plan.sort_keys:
            value = _resolve_output(item.expr, row)
            null_flag, v = _sortable(value)
            if item.descending:
                parts.append((-null_flag, _Reversed(v)))
            else:
                parts.append((null_flag, v))
        return tuple(parts)

    rows.sort(key=sort_key)
    return iter(rows)


class _Reversed:
    """Inverts comparison order for DESC sort keys of any type."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value


def _run_aggregate(db: Database, plan: Aggregate, stats: ExecutionStats) -> Iterator[Row]:
    agg_calls = _collect_aggregates(plan)
    groups: dict[tuple, tuple[Row, list[AggregateAccumulator]]] = {}
    ordered_keys: list[tuple] = []

    for row in _run(db, plan.child, stats):
        key = tuple(_sortable(evaluate(k, row)) for k in plan.group_keys)
        if key not in groups:
            groups[key] = (row, [AggregateAccumulator(c) for c in agg_calls])
            ordered_keys.append(key)
        for acc in groups[key][1]:
            acc.add(row)

    if not plan.group_keys and not groups:
        # Aggregate over empty input still yields one row (count=0 etc.).
        groups[()] = ({}, [AggregateAccumulator(c) for c in agg_calls])
        ordered_keys.append(())

    for key in ordered_keys:
        sample_row, accumulators = groups[key]
        agg_values = {
            call: acc.result() for call, acc in zip(agg_calls, accumulators)
        }
        out: Row = dict(sample_row)
        for call, value in agg_values.items():
            out[call] = value
        for item in plan.output:
            out[item.expr] = _eval_with_aggs(item.expr, sample_row, agg_values)
        if plan.having is not None:
            if not is_true(_eval_with_aggs(plan.having, sample_row, agg_values)):
                continue
        yield out


def _collect_aggregates(plan: Aggregate) -> list[FuncCall]:
    calls: list[FuncCall] = []
    seen: set[FuncCall] = set()
    roots: list[Expr] = [item.expr for item in plan.output]
    if plan.having is not None:
        roots.append(plan.having)
    for root in roots:
        for node in root.walk():
            if isinstance(node, FuncCall) and node.is_aggregate and node not in seen:
                seen.add(node)
                calls.append(node)
    return calls


def _eval_with_aggs(expr: Expr, row: Row, agg_values: dict[FuncCall, Any]) -> Any:
    """Evaluate an expression treating aggregate calls as constants."""
    if isinstance(expr, FuncCall) and expr.is_aggregate:
        return agg_values[expr]
    if isinstance(expr, ColumnRef):
        return evaluate(expr, row)
    from repro.sql.ast_nodes import BinaryOp, Literal, UnaryOp

    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, BinaryOp):
        left = _eval_with_aggs(expr.left, row, agg_values)
        right = _eval_with_aggs(expr.right, row, agg_values)
        return _apply_binary(expr.op, left, right)
    if isinstance(expr, UnaryOp):
        value = _eval_with_aggs(expr.operand, row, agg_values)
        if value is None:
            return None
        return (not value) if expr.op == "not" else -value
    return evaluate(expr, row)


def _apply_binary(op: str, left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    table = {
        "=": lambda a, b: a == b,
        "<>": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a / b,
        "%": lambda a, b: a % b,
        "and": lambda a, b: a and b,
        "or": lambda a, b: a or b,
        "||": lambda a, b: str(a) + str(b),
    }
    try:
        return table[op](left, right)
    except KeyError:
        raise ExecutorError(f"unknown operator {op!r}") from None
    except ZeroDivisionError:
        raise ExecutorError("division by zero") from None


def _run_project(db: Database, plan: Project, stats: ExecutionStats) -> Iterator[Row]:
    seen: set[tuple] = set()
    for row in _run(db, plan.child, stats):
        out = dict(row)
        values = []
        for item in plan.output:
            value = evaluate(item.expr, row)
            out[item.expr] = value
            values.append(value)
        if plan.distinct:
            key = tuple(_sortable(v) for v in values)
            if key in seen:
                continue
            seen.add(key)
        yield out


def _run_limit(db: Database, plan: Limit, stats: ExecutionStats) -> Iterator[Row]:
    produced = 0
    for row in _run(db, plan.child, stats):
        if produced >= plan.count:
            return
        produced += 1
        yield row

"""Command-line interface: the demo GUI's three screens, as subcommands.

The demo database is synthetic (the storage engine is in-process), so a
``--db`` option selects and scales one of the built-in generators
instead of connecting somewhere::

    python -m repro suggest-indexes    --budget-mb 16
    python -m repro suggest-partitions --replication 0.3
    python -m repro evaluate --index photoobj:ra,dec --index specobj:z
    python -m repro explain  --sql "SELECT ra FROM photoobj WHERE ra < 1" \
                             --index photoobj:ra
    python -m repro tune --stream queries.sql   # or: --stream - (stdin)

``--workload FILE`` accepts a semicolon-separated SQL file (the demo's
"workload file" input); by default the built-in 30-query survey
workload is used. ``tune --stream`` runs the online tuning loop over a
statement stream instead of a fixed workload.

Diagnostics that degrade result fidelity (truncated INUM order
combinations, recommendations held back by hysteresis, degraded
re-advises) are surfaced as ``warning:`` lines on stderr, not buried
in result objects.

``tune`` is the durable daemon entry point, so it runs with the full
degradation ladder on: state files are checksummed with last-good
``.bak`` recovery, a failed re-advise logs and continues, and a stream
that disappears mid-run (the file deleted, a pipe closed) flushes one
final checkpoint and exits with the distinct code
:data:`EXIT_STREAM_LOST` so supervisors can tell "input went away"
from "the tuner crashed".

``tune --apply`` materializes the final standing design through the
journaled :class:`~repro.resilience.apply.ApplyExecutor`: an intent
journal (default ``STATE.apply``, override with ``--journal``) precedes
every drop/build, so a killed apply resumes by re-running the same
command and ``tune --rollback`` restores the journaled pre-apply
design. A journal that records a *different* unfinished run exits with
:data:`EXIT_APPLY_CONFLICT` — resolve it (re-run or roll back) before
applying something new.

``--store`` (on ``tune`` and ``fleet``) swaps the local state file for
a pluggable :class:`~repro.resilience.store.StateStore`: ``file:PATH``
keeps today's checksummed files behind the interface, ``db:[PATH]``
keeps state *inside the monitored database*, so a daemon restarted on
a fresh host with zero local files resumes the same loop. The daemon
acquires a fenced writer lease at startup; a superseded daemon (another
one acquired after it) exits :data:`EXIT_STALE_LEASE` on its next
write instead of corrupting the new owner's journal. Exit codes live
in :mod:`repro.exit_codes`, one module, pinned to the README table by
a doc-drift test.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.bench.reporting import ResultTable
from repro.core.parinda import Parinda
from repro.errors import (
    ApplyConflictError,
    CanonicalizeError,
    FaultInjected,
    ReproError,
    StaleLeaseError,
    StateCorruptError,
    TokenizeError,
)

# Re-exported here for back-compat: scripts (and the test suite) import
# exit codes from repro.cli; their single source of truth — with docs
# and the README doc-drift pin — is repro.exit_codes.
from repro.exit_codes import (
    EXIT_APPLY_CONFLICT,
    EXIT_OK,
    EXIT_ROLLOUT_FROZEN,
    EXIT_STALE_LEASE,
    EXIT_STREAM_LOST,
)
from repro.optimizer.explain import explain
from repro.resilience import faults
from repro.resilience import state as resilience_state
from repro.resilience.store import StateStore, store_from_spec
from repro.storage.database import Database
from repro.workloads.sdss import build_sdss_database, sdss_workload
from repro.workloads.star import build_star_database, star_workload
from repro.workloads.workload import Workload, iter_statements


def _warn(message: str) -> None:
    print(f"warning: {message}", file=sys.stderr)


def _warn_truncation(result) -> None:
    """Surface degraded INUM fidelity as a user-facing warning."""
    truncated = getattr(result, "combinations_truncated", 0)
    if truncated:
        _warn(
            f"{truncated} interesting-order combination(s) were dropped "
            "(max_combinations cap); INUM estimates may over-approximate "
            "for the affected queries"
        )


def _load_database(spec: str) -> Database:
    name, _, scale = spec.partition(":")
    if name == "sdss":
        return build_sdss_database(photo_rows=int(scale) if scale else 10_000)
    if name == "star":
        return build_star_database(fact_rows=int(scale) if scale else 8_000)
    raise SystemExit(f"unknown --db {spec!r}; use sdss[:rows] or star[:rows]")


def _build_store(args: argparse.Namespace, db: Database) -> StateStore | None:
    """Resolve ``--store`` and acquire the fenced writer lease.

    Acquiring bumps the persisted epoch, so any daemon still holding
    the previous lease is fenced out: its next store write raises
    :class:`~repro.errors.StaleLeaseError` and the process exits
    :data:`EXIT_STALE_LEASE` instead of clobbering this run's journal.
    """
    spec = getattr(args, "store", None)
    if not spec:
        return None
    try:
        store = store_from_spec(spec, database=db)
    except ReproError as exc:
        raise SystemExit(str(exc))
    owner = f"pid:{os.getpid()}"
    epoch = store.acquire(owner=owner)
    print(f"State store {store.describe()}: lease epoch {epoch} ({owner}).")
    return store


def _load_workload(path: str | None, db_spec: str) -> Workload:
    if path is not None:
        return Workload.from_file(path)
    return sdss_workload() if db_spec.startswith("sdss") else star_workload()


def _parse_index_spec(spec: str) -> tuple[str, tuple[str, ...]]:
    table, _, columns = spec.partition(":")
    if not table or not columns:
        raise SystemExit(
            f"bad --index {spec!r}; expected table:col1,col2 (e.g. photoobj:ra,dec)"
        )
    return table, tuple(c.strip() for c in columns.split(","))


def _per_query_table(title: str, entries) -> ResultTable:
    table = ResultTable(title, ["query", "before", "after", "benefit %", "uses"])
    for entry in entries:
        pct = (
            (entry.cost_before - entry.cost_after) / entry.cost_before * 100
            if entry.cost_before
            else 0.0
        )
        table.add_row(
            entry.name,
            entry.cost_before,
            entry.cost_after,
            f"{pct:.1f}",
            ", ".join(entry.indexes_used) or "-",
        )
    return table


# ----------------------------------------------------------------------
# Subcommands


def cmd_suggest_indexes(args: argparse.Namespace) -> int:
    db = _load_database(args.db)
    workload = _load_workload(args.workload, args.db)
    parinda = Parinda(db)
    result = parinda.suggest_indexes(
        workload,
        budget_bytes=int(args.budget_mb * 1024 * 1024),
        backend=args.backend,
        single_column_only=args.single_column,
        compress=args.compress,
    )
    if args.compress and result.queries_folded:
        print(
            f"Compressed {len(workload)} statements onto "
            f"{len(workload) - result.queries_folded} templates "
            f"({result.candidates_pruned} candidates pruned)."
        )
    print(
        f"Considered {result.candidates_considered} candidates; "
        f"solver {result.solver_status} ({result.solver_nodes} nodes, "
        f"{result.elapsed_seconds:.2f}s)."
    )
    print(
        f"Suggested {len(result.indexes)} indexes, {result.size_pages} pages "
        f"of {result.budget_pages} allowed; workload cost "
        f"{result.cost_before:,.0f} -> {result.cost_after:,.0f} "
        f"({result.speedup:.2f}x)."
    )
    for index in result.indexes:
        print(f"  CREATE INDEX ON {index.table_name} "
              f"({', '.join(index.columns)});")
    _warn_truncation(result)
    if args.verbose:
        _per_query_table("Per-query benefit", result.per_query).emit()
    if args.create:
        created = parinda.create_indexes(result)
        print(f"Materialized {len(created)} indexes.")
    return 0


def cmd_suggest_partitions(args: argparse.Namespace) -> int:
    db = _load_database(args.db)
    workload = _load_workload(args.workload, args.db)
    parinda = Parinda(db)
    result = parinda.suggest_partitions(
        workload, replication_limit=args.replication
    )
    print(
        f"AutoPart: {result.iterations} iterations, {result.evaluations} "
        f"what-if evaluations, {result.elapsed_seconds:.1f}s."
    )
    print(
        f"Workload cost {result.cost_before:,.0f} -> {result.cost_after:,.0f} "
        f"({result.speedup:.2f}x)."
    )
    for table_name, scheme in sorted(result.schemes.items()):
        print(f"Partitions for {table_name}:")
        for position, fragment in enumerate(scheme.fragments):
            print(f"  {scheme.fragment_name(position)}: ({', '.join(fragment)})")
    if args.verbose:
        _per_query_table("Per-query benefit", result.per_query).emit()
    if args.save_rewritten:
        with open(args.save_rewritten, "w") as handle:
            for name, sql in result.rewritten_sql.items():
                handle.write(f"-- {name}\n{sql};\n\n")
        print(f"Rewritten workload saved to {args.save_rewritten}.")
    if args.create:
        created = parinda.create_partitions(result)
        print(f"Materialized {len(created)} fragment tables.")
    return 0


def cmd_suggest_combined(args: argparse.Namespace) -> int:
    db = _load_database(args.db)
    workload = _load_workload(args.workload, args.db)
    parinda = Parinda(db)
    budget_pages = max(1, int(args.budget_mb * 1024 * 1024) // 8192)
    result = parinda.suggest_combined(
        workload, budget_pages=budget_pages, replication_limit=args.replication
    )
    print(
        f"Partitions: {sum(len(s.fragments) for s in result.partitions.schemes.values())} "
        f"fragments ({result.partitions.speedup:.2f}x alone)."
    )
    print(
        f"Indexes on the partitioned design: {len(result.indexes.indexes)} "
        f"({result.indexes.size_pages}/{budget_pages} pages)."
    )
    for index in result.indexes.indexes:
        print(f"  CREATE INDEX ON {index.table_name} "
              f"({', '.join(index.columns)});")
    print(
        f"Combined workload cost {result.cost_before:,.0f} -> "
        f"{result.cost_after:,.0f} ({result.speedup:.2f}x)."
    )
    _warn_truncation(result.indexes)
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    if args.serve:
        return _fleet_serve(args)
    db = _load_database(args.db)
    workload = _load_workload(args.workload, args.db)
    parinda = Parinda(db)
    tuner = parinda.fleet(
        n_replicas=args.replicas,
        budget_bytes=int(args.budget_mb * 1024 * 1024),
        max_rounds=args.rounds,
        seed=args.seed,
        max_share=args.max_share,
        workers=args.workers,
    )
    result = tuner.tune(workload)
    print(
        f"Fleet of {result.n_replicas} replicas over "
        f"{result.candidates_considered} shared candidates; "
        f"{'converged' if result.converged else 'round cap reached'} "
        f"after {len(result.rounds)} round(s), "
        f"{result.elapsed_seconds:.2f}s."
    )
    for rnd in result.rounds:
        print(
            f"  round {rnd.number}: total fleet cost {rnd.total_cost:,.0f} "
            f"(clusters {'/'.join(str(s) for s in rnd.cluster_sizes)}, "
            f"{rnd.reassigned} reassigned)"
        )
    for replica in result.replicas:
        served = [
            name for name, rid in sorted(result.assignment.items())
            if rid == replica.replica_id
        ]
        print(
            f"Replica {replica.replica_id}: {len(replica.design)} indexes, "
            f"serves {len(served)} template(s)"
            + (f" ({', '.join(served)})" if served and args.verbose else "")
        )
        for index in replica.design:
            print(f"  CREATE INDEX ON {index.table_name} "
                  f"({', '.join(index.columns)});")
    for record in result.degraded:
        _warn(str(record))
    if args.baseline:
        baseline = tuner.uniform_baseline(workload)
        delta = (
            (baseline.total_cost - result.total_cost) / baseline.total_cost * 100
            if baseline.total_cost
            else 0.0
        )
        print(
            f"Uniform-design baseline: {baseline.total_cost:,.0f} "
            f"({len(baseline.result.indexes)} indexes on every replica); "
            f"divergent design saves {delta:.1f}%."
        )
    return 0


def _fleet_serve(args: argparse.Namespace) -> int:
    """The ``fleet --serve`` loop: closed-loop serving over a stream.

    Feeds every stream statement into a
    :class:`~repro.fleet.serve.FleetController`, which routes, watches
    drift, re-tunes, rolls designs out replica by replica through
    journaled applies, and rolls a sustained regression back
    automatically. With ``--state`` the rollout is journaled: killing
    the process at any point and re-running the same command resumes to
    the same terminal fleet state. ``--store`` swaps the journal's home
    for a pluggable state store (``db:`` keeps it inside the monitored
    database, surviving host loss). ``--thaw`` acknowledges a frozen
    fleet — it prints the regressed design for inspection, unfreezes,
    and resumes re-tuning in-process; ``--release N`` puts a
    quarantined replica back into rotation. Exits
    :data:`EXIT_ROLLOUT_FROZEN` when the run ends frozen (a regression
    rollback halted further rollouts), :data:`EXIT_STREAM_LOST` when
    the stream went away mid-run, :data:`EXIT_STALE_LEASE` when a newer
    daemon fenced this one off the store, 0 otherwise.
    """
    if args.state_interval <= 0:
        raise SystemExit("--state-interval must be positive")
    db = _load_database(args.db)
    parinda = Parinda(db, cache_max_entries=args.cache_entries)
    store = _build_store(args, db)

    def listener(event) -> None:
        if event.kind in ("quarantined", "degraded", "regressed", "frozen"):
            _warn(str(event))
            return
        print(event)

    controller = parinda.fleet_serve(
        args.replicas,
        budget_bytes=int(args.budget_mb * 1024 * 1024),
        state_file=None if store is not None else args.state,
        state_store=store,
        window_size=args.window,
        check_interval=args.check_interval,
        warmup=args.warmup,
        state_interval=args.state_interval,
        regression_windows=args.regression_windows,
        regression_tolerance=args.tolerance,
        probation_windows=args.probation,
        max_share=args.max_share,
        max_rounds=args.rounds,
        seed=args.seed,
        workers=args.workers,
        listener=listener,
    )
    resume_position = 0
    if controller.resumed:
        resume_position = controller.position
        source = store.describe() if store is not None else args.state
        print(
            f"Resuming from {source}: position {resume_position}, "
            f"phase {controller.phase}."
        )
        # Converge first (finish any interrupted rollout / rollback)
        # so the skipped stream prefix replays against a settled fleet.
        controller.resume()

    if args.thaw:
        if controller.frozen:
            info = controller.thaw() or {}
            names = ", ".join(
                "{}({})".format(ix["table_name"], ", ".join(ix["columns"]))
                for ix in info.get("design", [])
            ) or "-"
            print(
                f"Thawed: regressed design on replica {info.get('replica')} "
                f"at position {info.get('position')} was [{names}]; "
                "re-tuning resumed."
            )
        else:
            _warn("--thaw: fleet is not frozen; nothing to acknowledge")
    if args.release is not None:
        try:
            controller.release(args.release)
            print(f"Replica {args.release} released from quarantine.")
        except ReproError as exc:
            _warn(f"release blocked: {exc}")

    position = 0
    skipped = 0
    stream_lost: str | None = None
    try:
        for statement in iter_statements(args.stream):
            # Same contract as ``tune``: checked before the position
            # counter moves, so a resume never skips the lost statement.
            faults.check("stream.read", f"statement {position + 1}")
            position += 1
            if position <= resume_position:
                continue
            try:
                controller.observe(statement)
            except (TokenizeError, CanonicalizeError) as exc:
                skipped += 1
                _warn(f"skipped untemplatable statement: {exc}")
    except OSError as exc:
        stream_lost = str(exc)
    except FaultInjected as exc:
        # Only the stream's own fault point means "input went away";
        # anything deeper (rollout.journal, journal.write) stands in
        # for a crash and must kill the process like one.
        if exc.point != "stream.read":
            raise
        stream_lost = str(exc)
    if stream_lost is not None:
        _warn(
            f"statement stream lost after {position} statement(s): "
            f"{stream_lost}; flushing final checkpoint"
        )
    if store is not None:
        try:
            store.write("", controller.save_state())
        except (OSError, FaultInjected) as exc:
            _warn(f"state checkpoint to {store.describe()} failed ({exc})")
    elif args.state:
        try:
            resilience_state.dump_state(args.state, controller.save_state())
        except (OSError, FaultInjected) as exc:
            _warn(f"state checkpoint to {args.state} failed ({exc})")

    counts = controller.event_counts
    print(
        f"\nStream done: {controller.position} statements, phase "
        f"{controller.phase}"
        + (f", {skipped} skipped" if skipped else "")
        + f"; {counts['drifted']} drift(s), {counts['re-tuned']} "
        f"re-tune(s), {counts['rollout-finished']} rollout(s), "
        f"{counts['rolled-back']} rollback(s), "
        f"{counts['quarantined']} quarantined."
    )
    for runtime in controller.replicas:
        status = runtime.status
        detail = f" ({runtime.detail})" if runtime.detail else ""
        print(
            f"Replica {runtime.replica_id} [{status}{detail}]: "
            f"{len(runtime.design)} index(es)"
        )
        for index in runtime.design:
            print(f"  CREATE INDEX ON {index.table_name} "
                  f"({', '.join(index.columns)});")
    if controller.frozen:
        return EXIT_ROLLOUT_FROZEN
    return EXIT_STREAM_LOST if stream_lost is not None else 0


def _save_tuner_state(path: str, tuner, position: int) -> bool:
    """Checkpoint the tuner plus the stream read position.

    ``drain=False`` keeps autosaves off the advisor's critical path in
    background mode; a checkpoint in flight at save time is simply
    re-detected as drift after a resume. The write goes through
    :func:`repro.resilience.state.dump_state`: a checksummed envelope,
    written atomically, with the previous good file rotated to ``.bak``
    so even a torn write leaves a recoverable last-good checkpoint.

    A failed save must never kill the tuning loop — the in-memory tuner
    is still healthy and the next interval retries — so disk errors and
    injected ``state.write`` faults are reported as warnings and the
    function returns False instead of raising.
    """
    state = tuner.save_state(drain=False)
    state["stream_position"] = position
    try:
        resilience_state.dump_state(path, state)
    except (OSError, FaultInjected) as exc:
        _warn(f"state checkpoint to {path} failed ({exc}); continuing")
        return False
    return True


def _save_tuner_state_to(store: StateStore, tuner, position: int) -> bool:
    """Checkpoint the tuner into a state store's primary slot.

    Same degradation contract as :func:`_save_tuner_state` — transient
    store errors and injected crash points warn and return False — with
    one deliberate exception: :class:`~repro.errors.StaleLeaseError`
    propagates, because a fenced-out daemon must die, not keep serving
    while another daemon owns the journal.
    """
    try:
        tuner.save_state_to(
            store, drain=False, extra={"stream_position": position}
        )
    except (OSError, FaultInjected) as exc:
        _warn(
            f"state checkpoint to {store.describe()} failed ({exc}); "
            "continuing"
        )
        return False
    return True


def cmd_tune(args: argparse.Namespace) -> int:
    if args.state_interval <= 0:
        raise SystemExit("--state-interval must be positive")
    if args.dry_run and not args.apply:
        raise SystemExit("--dry-run only makes sense with --apply")
    if args.rollback and (args.apply or args.dry_run):
        raise SystemExit("--rollback excludes --apply/--dry-run")
    db = _load_database(args.db)
    parinda = Parinda(db, cache_max_entries=args.cache_entries)
    store = _build_store(args, db)
    journal_path = args.journal or (
        f"{args.state}.apply" if args.state else "repro-apply.json"
    )

    if args.rollback:
        # No streaming: restore the journaled pre-apply design and exit.
        try:
            if store is not None:
                report = parinda.rollback_design(store=store)
            else:
                report = parinda.rollback_design(journal_path)
        except ApplyConflictError as exc:
            _warn(f"rollback blocked: {exc}")
            return EXIT_APPLY_CONFLICT
        for record in report.degraded:
            _warn(str(record))
        print(
            f"Rollback {report.phase}: rebuilt {len(report.built)}, "
            f"dropped {len(report.dropped)}, skipped {len(report.skipped)}."
        )
        return 0

    def listener(event) -> None:
        if event.kind == "observed":
            return
        if event.kind in ("held", "quarantined", "degraded"):
            label = "recommendation held" if event.kind == "held" else event.kind
            _warn(f"[{event.sequence}] {label}: {event.detail}")
            return
        print(f"[{event.sequence}] {event.kind}: {event.detail}")
        if event.kind == "re-advised" and event.result is not None:
            _warn_truncation(event.result)

    # A saved state also records how far into the stream it got, so a
    # restarted file-stream run skips what the previous run already
    # observed. Stdin is not replayable, so the position is ignored
    # there — the caller feeds whatever is new. The read goes through
    # the checksum envelope: a torn primary falls back to the rotated
    # .bak, and when both are gone the daemon warns and starts cold
    # rather than dying on its own state file.
    resume_position = 0
    state_file = args.state
    state_store = store
    if store is not None:
        # The store replaces the local state file entirely: the resume
        # position comes out of the primary slot, and a slot both of
        # whose underlying copies are torn degrades to a cold start the
        # same way a torn file pair does.
        state_file = None
        if store.exists(""):
            try:
                saved, _source = store.read("")
            except StateCorruptError as exc:
                _warn(f"state store unrecoverable ({exc}); starting cold")
                state_store = None
            else:
                if args.stream != "-":
                    resume_position = int(saved.get("stream_position", 0))
    elif args.state and resilience_state.has_state(args.state):
        try:
            saved, source = resilience_state.load_state(args.state)
        except StateCorruptError as exc:
            _warn(f"state file unrecoverable ({exc}); starting cold")
            state_file = None
        else:
            if source == "backup":
                _warn(
                    "state primary was corrupt; resumed from last-good "
                    f"checkpoint {resilience_state.backup_path(args.state)}"
                )
            if args.stream != "-":
                resume_position = int(saved.get("stream_position", 0))

    skipped = 0
    position = 0
    stream_lost: str | None = None
    with parinda.online(
        budget_pages=max(1, int(args.budget_mb * 1024 * 1024) // 8192),
        state_file=state_file,
        state_store=state_store,
        degrade_on_error=True,
        window_size=args.window,
        check_interval=args.check_interval,
        warmup=args.warmup,
        build_cost_per_page=args.build_cost_per_page,
        workers=args.workers,
        background=args.background,
        listener=listener,
        compress=args.compress,
    ) as tuner:
        if resume_position:
            source = store.describe() if store is not None else args.state
            print(
                f"Resuming from {source}: {tuner.monitor.observed} "
                f"statements already observed; skipping {resume_position} "
                "stream statement(s)."
            )
        try:
            for statement in iter_statements(args.stream):
                # Injection point for "the stream went away mid-run";
                # real runs hit the OSError branch below instead (file
                # deleted under us, pipe closed, disk gone). Checked
                # before the position counter moves, so a checkpoint
                # flushed after a loss never skips the lost statement
                # on resume.
                faults.check("stream.read", f"statement {position + 1}")
                position += 1
                if position <= resume_position:
                    continue
                try:
                    tuner.observe(statement)
                except (TokenizeError, CanonicalizeError) as exc:
                    # Not even a template: drop it. Statements that DO
                    # template but fail the parser or binder are
                    # quarantined by the tuner instead, so one bad shape
                    # cannot fail every future snapshot re-advise.
                    skipped += 1
                    _warn(f"skipped untemplatable statement: {exc}")
                if position % args.state_interval == 0:
                    if store is not None:
                        _save_tuner_state_to(store, tuner, position)
                    elif args.state:
                        _save_tuner_state(args.state, tuner, position)
        except (OSError, FaultInjected) as exc:
            # The stream is gone; what was observed is still good.
            # Flush a final checkpoint (below, after the drain) and
            # exit with a distinct code so supervisors can tell this
            # apart from a tuner crash.
            stream_lost = str(exc)
            _warn(
                f"statement stream lost after {position} statement(s): "
                f"{exc}; flushing final checkpoint"
            )
        if stream_lost is None and tuner.readvise_count == 0 and tuner.monitor.observed:
            # Short streams can end inside the warmup window; still give
            # the user an answer for what was seen.
            tuner.readvise(reason="end of stream")

    # The context manager has drained; persist the settled final state.
    if store is not None:
        _save_tuner_state_to(store, tuner, position)
    elif args.state:
        _save_tuner_state(args.state, tuner, position)

    counts = tuner.event_counts
    print(
        f"\nStream done: {tuner.monitor.observed} statements, "
        f"{len(tuner.monitor.templates)} templates"
        + (f", {skipped} skipped" if skipped else "")
        + (
            f", {counts['quarantined']} quarantined"
            if counts["quarantined"]
            else ""
        )
        + (
            f", {counts['degraded']} degraded"
            if counts.get("degraded")
            else ""
        )
        + (
            f", {tuner.coalesced} checkpoint(s) coalesced"
            if tuner.coalesced
            else ""
        )
        + f"; {counts['drifted']} drift(s), {counts['re-advised']} "
        f"re-advise(s), {counts['recommended']} adopted, "
        f"{counts['held']} held."
    )
    if tuner.design:
        print(f"Standing design ({len(tuner.design)} indexes):")
        for index in tuner.design:
            print(f"  CREATE INDEX ON {index.table_name} "
                  f"({', '.join(index.columns)});")
    else:
        print("Standing design: no indexes adopted.")
    if args.apply:
        if stream_lost is not None:
            _warn(
                "stream lost; skipping --apply — resume the stream, then "
                "re-run with --apply"
            )
        else:
            code = _tune_apply(args, parinda, tuner, journal_path, store)
            if code != 0:
                return code
    if args.verbose:
        stats = tuner.cache.stats()
        table = ResultTable(
            "Cost-cache", ["section", "hits", "misses", "evictions", "size"]
        )
        for section, entry in sorted(stats.items()):
            table.add_row(
                section,
                entry["hits"],
                entry["misses"],
                entry["evictions"],
                entry["size"],
            )
        table.emit()
    return EXIT_STREAM_LOST if stream_lost is not None else 0


def _tune_apply(
    args, parinda, tuner, journal_path: str, store: StateStore | None = None
) -> int:
    """The ``tune --apply`` tail: materialize the standing design.

    Passes the tuner's full :class:`AdvisorResult` through when it
    still describes the standing design (so ``--validate`` can report
    simulated-vs-materialized costs per query); falls back to the bare
    index list otherwise. Returns the process exit code contribution
    (0, or :data:`EXIT_APPLY_CONFLICT`).
    """
    from repro.catalog.schema import index_signature

    design = list(tuner.design)
    request = design
    result = tuner.last_result
    if result is not None and {index_signature(ix) for ix in result.indexes} == {
        index_signature(ix) for ix in design
    }:
        request = result
    try:
        report = parinda.apply_design(
            request,
            workload=tuner.monitor.snapshot() if args.validate else None,
            dry_run=args.dry_run,
            validate=args.validate,
            journal_path=None if store is not None else journal_path,
            store=store,
        )
    except ApplyConflictError as exc:
        _warn(f"apply blocked: {exc}")
        return EXIT_APPLY_CONFLICT
    for record in report.degraded:
        _warn(str(record))
    if report.dry_run:
        print(
            f"Dry run: would build {len(report.built)}, "
            f"would drop {len(report.dropped)}."
        )
        for name in report.dropped:
            print(f"  DROP INDEX {name};")
        for name in report.built:
            print(f"  CREATE INDEX {name};")
        return 0
    journal_desc = store.describe("apply") if store is not None else journal_path
    print(
        f"Applied design{' (resumed)' if report.resumed else ''}: "
        f"built {len(report.built)}, dropped {len(report.dropped)}, "
        f"skipped {len(report.skipped)}; journal {journal_desc} "
        f"{report.phase}."
    )
    for entry in report.validation:
        if entry.simulated is None:
            print(f"  {entry.name}: materialized cost {entry.materialized:,.0f}")
        else:
            print(
                f"  {entry.name}: simulated {entry.simulated:,.0f} vs "
                f"materialized {entry.materialized:,.0f} "
                f"({entry.error * 100:.1f}% error)"
            )
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    db = _load_database(args.db)
    workload = _load_workload(args.workload, args.db)
    designer = Parinda(db).interactive()
    for spec in args.index or []:
        table, columns = _parse_index_spec(spec)
        designer.add_whatif_index(table, columns)
    evaluation = designer.evaluate(workload)
    print(
        f"Workload cost {evaluation.cost_before:,.0f} -> "
        f"{evaluation.cost_after:,.0f}; average per-query benefit "
        f"{evaluation.average_benefit * 100:.1f}%."
    )
    _per_query_table("Per-query benefit", evaluation.per_query).emit()
    if args.compare:
        comparison = designer.compare_with_materialized(args.compare, workload)
        print(
            f"\nSimulation check on {args.compare}: plans match = "
            f"{comparison.plans_match}, cost error "
            f"{comparison.cost_error * 100:.4f}%"
        )
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    db = _load_database(args.db)
    designer = Parinda(db).interactive()
    for spec in args.index or []:
        table, columns = _parse_index_spec(spec)
        designer.add_whatif_index(table, columns)
    plan = designer.session.plan(args.sql)
    print(explain(plan))
    return 0


# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PARINDA reproduction: interactive physical design",
    )
    parser.add_argument(
        "--db",
        default="sdss:10000",
        help="built-in database to load: sdss[:rows] or star[:rows]",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("suggest-indexes", help="scenario 3: automatic indexes")
    p.add_argument("--workload", help="semicolon-separated SQL file")
    p.add_argument("--budget-mb", type=float, default=16.0)
    p.add_argument("--backend", choices=["builtin", "scipy"], default="builtin")
    p.add_argument("--single-column", action="store_true",
                   help="COLT-style single-column candidates only")
    p.add_argument("--compress", action="store_true",
                   help="CoPhy scale mode: fold the workload onto "
                        "canonical templates and prune the ILP")
    p.add_argument("--create", action="store_true",
                   help="materialize the suggestions")
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=cmd_suggest_indexes)

    p = sub.add_parser("suggest-partitions", help="scenario 2: AutoPart")
    p.add_argument("--workload", help="semicolon-separated SQL file")
    p.add_argument("--replication", type=float, default=0.25,
                   help="replicated-column space limit (fraction of table)")
    p.add_argument("--save-rewritten", metavar="FILE",
                   help="write the rewritten workload to FILE")
    p.add_argument("--create", action="store_true")
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=cmd_suggest_partitions)

    p = sub.add_parser(
        "suggest-combined", help="full pipeline: partitions, then indexes"
    )
    p.add_argument("--workload", help="semicolon-separated SQL file")
    p.add_argument("--budget-mb", type=float, default=16.0)
    p.add_argument("--replication", type=float, default=0.25)
    p.set_defaults(func=cmd_suggest_combined)

    p = sub.add_parser(
        "tune", help="scenario 4: online tuning over a statement stream"
    )
    p.add_argument("--stream", default="-", metavar="FILE",
                   help="semicolon-separated SQL stream; '-' reads stdin")
    p.add_argument("--state", metavar="FILE",
                   help="resume from and periodically checkpoint the tuner "
                        "state to this JSON file (survives restarts)")
    p.add_argument("--state-interval", type=int, default=32,
                   help="statements between --state checkpoints")
    p.add_argument("--store", metavar="SPEC",
                   help="pluggable state store replacing --state: "
                        "file:PATH (checksummed local files) or db:[PATH] "
                        "(state lives inside the monitored database and "
                        "survives host loss); acquires a fenced writer "
                        "lease at startup")
    p.add_argument("--background", action="store_true",
                   help="run drift checks and re-advising on a background "
                        "thread so observation never blocks")
    p.add_argument("--budget-mb", type=float, default=16.0)
    p.add_argument("--window", type=int, default=128,
                   help="sliding-window size (statements)")
    p.add_argument("--check-interval", type=int, default=32,
                   help="statements between drift checks")
    p.add_argument("--warmup", type=int, default=None,
                   help="statements before the first advise (default: window)")
    p.add_argument("--build-cost-per-page", type=float, default=4.0,
                   help="hysteresis: per-page cost charged to new indexes")
    p.add_argument("--compress", action="store_true",
                   help="CoPhy scale mode: re-advise the full decayed "
                        "template profile with workload compression and "
                        "pruned ILP (for 10k+ statement streams)")
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--cache-entries", type=int, default=4096,
                   help="per-section CostCache bound (LRU)")
    p.add_argument("--apply", action="store_true",
                   help="materialize the final standing design through the "
                        "crash-safe apply journal")
    p.add_argument("--dry-run", action="store_true",
                   help="with --apply: report the drop/build delta without "
                        "touching anything")
    p.add_argument("--rollback", action="store_true",
                   help="restore the journaled pre-apply design and exit "
                        "(no streaming)")
    p.add_argument("--journal", metavar="FILE",
                   help="apply-journal path (default: STATE.apply, or "
                        "repro-apply.json without --state)")
    p.add_argument("--validate", action="store_true",
                   help="with --apply: re-plan the window against the "
                        "materialized design and report simulated-vs-"
                        "materialized costs")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="print cost-cache statistics at the end")
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser(
        "fleet", help="scenario 5: divergent designs for a replicated fleet"
    )
    p.add_argument("--replicas", type=int, default=3, metavar="N",
                   help="fleet width (one design per replica)")
    p.add_argument("--rounds", type=int, default=8, metavar="R",
                   help="cluster→tune→route iteration cap")
    p.add_argument("--workload", help="semicolon-separated SQL file")
    p.add_argument("--budget-mb", type=float, default=16.0,
                   help="per-replica storage budget")
    p.add_argument("--max-share", type=float, default=1.0,
                   help="load-balance cap: max fraction of routed weight "
                        "one replica may serve (1.0 disables)")
    p.add_argument("--seed", type=int, default=0,
                   help="clustering seed (fixed seed => identical fleet)")
    p.add_argument("--workers", type=int, default=1,
                   help="per-cluster advisor fan-out width")
    p.add_argument("--baseline", action="store_true",
                   help="also tune the uniform single-design baseline "
                        "and report the divergent saving")
    p.add_argument("--serve", action="store_true",
                   help="closed-loop serving: route a statement stream, "
                        "re-tune on drift, roll designs out replica by "
                        "replica with journaled applies, auto-rollback "
                        "sustained regressions")
    p.add_argument("--stream", default="-", metavar="FILE",
                   help="with --serve: semicolon-separated SQL stream; "
                        "'-' reads stdin")
    p.add_argument("--state", metavar="FILE",
                   help="with --serve: journal rollout state here so a "
                        "killed run resumes to the same terminal fleet")
    p.add_argument("--store", metavar="SPEC",
                   help="with --serve: pluggable state store replacing "
                        "--state: file:PATH or db:[PATH] (rollout journal "
                        "lives inside the monitored database and survives "
                        "host loss); acquires a fenced writer lease at "
                        "startup")
    p.add_argument("--thaw", action="store_true",
                   help="with --serve: acknowledge a frozen fleet — print "
                        "the regressed design, unfreeze, and resume "
                        "re-tuning in-process")
    p.add_argument("--release", type=int, default=None, metavar="R",
                   help="with --serve: release quarantined replica R back "
                        "into serving rotation before streaming")
    p.add_argument("--state-interval", type=int, default=64,
                   help="statements between steady-state checkpoints")
    p.add_argument("--window", type=int, default=64,
                   help="per-replica monitor window (statements)")
    p.add_argument("--check-interval", type=int, default=32,
                   help="statements between drift/validation checks")
    p.add_argument("--warmup", type=int, default=None,
                   help="statements before the first tune (default: window)")
    p.add_argument("--regression-windows", type=int, default=2,
                   help="consecutive regressing windows that trigger "
                        "automatic rollback of a replica")
    p.add_argument("--tolerance", type=float, default=0.1,
                   help="relative window-cost slack before a validation "
                        "counts as regressing")
    p.add_argument("--probation", type=int, default=4,
                   help="validation windows a fresh design stays under "
                        "the health gate")
    p.add_argument("--cache-entries", type=int, default=4096,
                   help="per-section CostCache bound (LRU)")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="list the templates each replica serves")
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser("evaluate", help="scenario 1: interactive what-if")
    p.add_argument("--workload", help="semicolon-separated SQL file")
    p.add_argument("--index", action="append", metavar="TABLE:COL1,COL2",
                   help="what-if index (repeatable)")
    p.add_argument("--compare", metavar="QUERY",
                   help="verify simulation of QUERY against a materialized twin")
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("explain", help="EXPLAIN a query under what-if indexes")
    p.add_argument("--sql", required=True)
    p.add_argument("--index", action="append", metavar="TABLE:COL1,COL2")
    p.set_defaults(func=cmd_explain)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except StaleLeaseError as exc:
        # A newer daemon acquired the store lease; this one must stop
        # rather than clobber the new owner's journal. Distinct code so
        # supervisors do NOT blindly restart it against the same store.
        _warn(f"fenced off the state store: {exc}")
        return EXIT_STALE_LEASE


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

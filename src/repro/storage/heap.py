"""Heap files: row storage with faithful page accounting.

Rows are kept column-major (plain Python lists) for compactness, but the
heap tracks which *page* every row lives on, computed from real tuple
widths (value widths + alignment + PostgreSQL's tuple overhead). Page
residency is what the executor charges I/O against, so a narrow
vertical fragment genuinely costs fewer page reads than its wide parent
table — the effect AutoPart exploits.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

from repro.catalog.datatypes import align_up
from repro.catalog.schema import Table
from repro.catalog.sizing import BLOCK_SIZE, HEAP_TUPLE_OVERHEAD, PAGE_HEADER_SIZE
from repro.errors import ExecutorError


class HeapFile:
    """Column-major row storage with per-row page assignment."""

    def __init__(self, table: Table, columns: Mapping[str, Sequence[Any]]) -> None:
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise ExecutorError(f"ragged column data for table {table.name!r}")
        self._table = table
        self._columns: dict[str, list[Any]] = {}
        for column in table.columns:
            if column.name not in columns:
                raise ExecutorError(
                    f"missing data for column {column.name!r} of {table.name!r}"
                )
            self._columns[column.name] = list(columns[column.name])
        self._row_count = lengths.pop() if lengths else 0
        self._page_of_row = self._assign_pages()

    def _assign_pages(self) -> list[int]:
        """Pack rows into pages front-to-back using aligned tuple widths."""
        pages: list[int] = []
        page_id = 0
        used = PAGE_HEADER_SIZE
        dtypes = [(name, self._table.column(name).dtype) for name in self._columns]
        for row_idx in range(self._row_count):
            width = HEAP_TUPLE_OVERHEAD
            for name, dtype in dtypes:
                value = self._columns[name][row_idx]
                width = align_up(width, dtype.typalign)
                width += dtype.value_width(value)
            width = align_up(width, 8)
            if used + width > BLOCK_SIZE and used > PAGE_HEADER_SIZE:
                page_id += 1
                used = PAGE_HEADER_SIZE
            used += width
            pages.append(page_id)
        return pages

    @property
    def table(self) -> Table:
        return self._table

    @property
    def row_count(self) -> int:
        return self._row_count

    @property
    def page_count(self) -> int:
        if self._row_count == 0:
            return 1
        return self._page_of_row[-1] + 1

    def page_of(self, row_idx: int) -> int:
        return self._page_of_row[row_idx]

    def column(self, name: str) -> list[Any]:
        try:
            return self._columns[name]
        except KeyError:
            raise ExecutorError(
                f"table {self._table.name!r} has no column {name!r}"
            ) from None

    def value(self, row_idx: int, column: str) -> Any:
        return self.column(column)[row_idx]

    def row(self, row_idx: int) -> dict[str, Any]:
        return {name: values[row_idx] for name, values in self._columns.items()}

    def scan(self) -> Iterator[int]:
        """Yield row indexes in physical order."""
        return iter(range(self._row_count))

    def columns_dict(self) -> dict[str, list[Any]]:
        """The raw column data (shared, do not mutate)."""
        return self._columns


class Relation:
    """A heap file plus its schema — one stored table."""

    def __init__(self, table: Table, data: Mapping[str, Sequence[Any]]) -> None:
        self.table = table
        self.heap = HeapFile(table, data)

    @property
    def name(self) -> str:
        return self.table.name

    def project_data(self, columns: tuple[str, ...]) -> dict[str, list[Any]]:
        """Column data restricted to ``columns`` — used to materialize
        vertical fragments."""
        return {name: list(self.heap.column(name)) for name in columns}

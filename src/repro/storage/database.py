"""The Database facade: catalog + stored relations + built indexes.

This is the "PostgreSQL instance" of the reproduction. The optimizer
needs only the catalog (statistics); the executor needs the relations
and any materialized B-Trees. PARINDA's what-if layer never touches the
stored data — it works against a cloned catalog — which is exactly why
simulation is orders of magnitude faster than materialization.
"""

from __future__ import annotations

import time
from typing import Any, Mapping, Sequence

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Index, PartitionScheme, Table
from repro.catalog.statistics import analyze_table
from repro.errors import DuplicateObjectError, UnknownObjectError
from repro.storage.btree import BTreeIndex
from repro.storage.heap import Relation


class Database:
    """An in-process database instance with page-accounted storage."""

    def __init__(self) -> None:
        self.catalog = Catalog()
        self._relations: dict[str, Relation] = {}
        self._btrees: dict[str, BTreeIndex] = {}

    # ------------------------------------------------------------------
    # DDL + data loading

    def create_table(
        self, table: Table, data: Mapping[str, Sequence[Any]] | None = None
    ) -> Relation:
        """Create ``table`` and load ``data`` (column-major); auto-ANALYZE."""
        if data is None:
            data = {c.name: [] for c in table.columns}
        self.catalog.add_table(table)
        relation = Relation(table, data)
        self._relations[table.name] = relation
        self.analyze(table.name)
        return relation

    def replace_rows(
        self, table_name: str, data: Mapping[str, Sequence[Any]]
    ) -> Relation:
        """Swap a stored relation's rows without re-ANALYZE or a DDL bump.

        This exists for *system* tables — the resilience layer's
        ``repro_state`` store mirrors its journal rows into the
        monitored database on every write, and re-analyzing (which
        bumps the catalog version and evicts every cached plan) on each
        journal write would turn durability into a planner-cache storm.
        Statistics for the table go stale; that is deliberate and
        harmless for tables no workload query touches. Regular data
        loading should keep using :meth:`create_table`.
        """
        relation = self.relation(table_name)
        replaced = Relation(relation.table, data)
        self._relations[table_name] = replaced
        return replaced

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)
        self._relations.pop(name, None)
        for index_name in [
            n for n, bt in self._btrees.items() if bt.definition.table_name == name
        ]:
            del self._btrees[index_name]

    def create_index(
        self, index: Index, fault_injector=None
    ) -> BTreeIndex:
        """Materialize a real B-Tree for ``index`` and register it.

        Returns the built tree; building takes time proportional to
        N log N — the cost the what-if layer avoids.

        Atomic build-then-publish: the definition is validated first
        (:meth:`Catalog.check_new_index`), then the B-Tree is fully
        built, and only then is the index published to the catalog and
        the B-Tree registry together. A build that fails mid-way —
        a real error or an injected ``index.build``/``page.read``
        fault — leaves the catalog exactly as it was; it can never
        point at a broken or half-built index.
        """
        if index.hypothetical:
            index = index.as_real()
        self.catalog.check_new_index(index)
        relation = self.relation(index.table_name)
        btree = BTreeIndex(
            index, relation.table, relation.heap, fault_injector=fault_injector
        )
        # Publish: nothing above mutated shared state, so the two
        # registrations below are the only visible effect.
        self.catalog.add_index(index)
        self._btrees[index.name] = btree
        return btree

    def drop_index(self, name: str) -> None:
        self.catalog.drop_index(name)
        self._btrees.pop(name, None)

    def analyze(
        self, table_name: str | None = None, target: int | None = None
    ) -> None:
        """Recompute statistics for one table (or all tables).

        ``target`` mirrors PostgreSQL's ``default_statistics_target``:
        the number of MCV slots and histogram bins kept per column.
        Lower targets produce coarser estimates — the A4 ablation
        quantifies what that costs the what-if machinery.
        """
        from repro.catalog.statistics import DEFAULT_STATISTICS_TARGET

        names = [table_name] if table_name else list(self._relations)
        for name in names:
            relation = self.relation(name)
            stats = analyze_table(
                relation.table,
                relation.heap.columns_dict(),
                page_count=relation.heap.page_count,
                target=target if target is not None else DEFAULT_STATISTICS_TARGET,
            )
            self.catalog.set_statistics(name, stats)

    # ------------------------------------------------------------------
    # Access

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownObjectError(f"no stored relation {name!r}") from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def btree(self, index_name: str) -> BTreeIndex:
        try:
            return self._btrees[index_name]
        except KeyError:
            raise UnknownObjectError(
                f"index {index_name!r} is not materialized"
            ) from None

    def has_btree(self, index_name: str) -> bool:
        return index_name in self._btrees

    @property
    def table_names(self) -> list[str]:
        return sorted(self._relations)

    # ------------------------------------------------------------------
    # Partition materialization

    def materialize_partitions(self, scheme: PartitionScheme) -> list[Relation]:
        """Physically create the vertical fragments of ``scheme``.

        Every fragment table carries the parent's primary-key columns
        (prepended when missing) so the original rows can be re-joined.
        The parent table is kept — queries are redirected by the
        rewriter, mirroring how the paper materializes suggested
        partitions alongside the original design.
        """
        parent = self.relation(scheme.table_name)
        pk = parent.table.primary_key
        created: list[Relation] = []
        for position, fragment in enumerate(scheme.fragments):
            columns = tuple(pk) + tuple(c for c in fragment if c not in pk)
            name = scheme.fragment_name(position)
            if self.catalog.has_table(name):
                raise DuplicateObjectError(f"fragment table {name!r} already exists")
            frag_table = parent.table.project(columns, new_name=name)
            data = parent.project_data(columns)
            created.append(self.create_table(frag_table, data))
        return created

    def clone(self) -> "Database":
        """An independent database view over the same stored rows.

        The catalog and B-Tree registry are copied (DDL on the clone —
        creating or dropping indexes — never leaks back), while the
        heap relations are **shared**: the fleet layer clones one built
        database into N replicas, and replica divergence is entirely a
        matter of catalog + index state, never of row data. Existing
        B-Trees are shared too (they are immutable once built); a clone
        that drops one merely unregisters it from its own view.
        """
        other = Database.__new__(Database)
        other.catalog = self.catalog.clone()
        other._relations = dict(self._relations)
        other._btrees = dict(self._btrees)
        return other

    def timed_create_index(self, index: Index) -> tuple[BTreeIndex, float]:
        """Build an index and report the wall-clock build time (E4)."""
        started = time.perf_counter()
        btree = self.create_index(index)
        return btree, time.perf_counter() - started

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Database(tables={len(self._relations)}, "
            f"materialized_indexes={len(self._btrees)})"
        )

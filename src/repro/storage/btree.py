"""A real B-Tree index with page-accurate leaf sizing.

Built bulk-load style (sort + pack leaves at a fill factor), like
PostgreSQL's CREATE INDEX. The leaf page count of a built tree is the
ground truth against which the paper's Equation 1 estimate is validated
(experiment E7), and range scans over the tree drive the executor's
index-scan operator.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.catalog.schema import Index, Table
from repro.catalog.sizing import (
    BLOCK_SIZE,
    BTREE_LEAF_FILLFACTOR,
    INDEX_ROW_OVERHEAD,
    PAGE_HEADER_SIZE,
    aligned_row_width,
)
from repro.errors import ExecutorError
from repro.resilience import faults
from repro.storage.heap import HeapFile


class _KeyPart:
    """Wrapper making heterogeneous/None key parts totally ordered.

    SQL NULLs sort last (PostgreSQL's default NULLS LAST for ASC).
    """

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: object) -> bool:
        if isinstance(other, _InfinityPart):
            return True
        if not isinstance(other, _KeyPart):
            return NotImplemented  # type: ignore[return-value]
        if self.value is None:
            return False
        if other.value is None:
            return True
        return self.value < other.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _KeyPart) and self.value == other.value

    def __le__(self, other: "_KeyPart") -> bool:
        return self == other or self < other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_KeyPart({self.value!r})"


def _wrap_key(values: tuple[Any, ...]) -> tuple[_KeyPart, ...]:
    return tuple(_KeyPart(v) for v in values)


@dataclass(frozen=True)
class _LeafEntry:
    key: tuple[_KeyPart, ...]
    row_id: int


class BTreeIndex:
    """A bulk-loaded B-Tree over one or more columns of a heap file."""

    def __init__(
        self,
        definition: Index,
        table: Table,
        heap: HeapFile,
        fillfactor: float = BTREE_LEAF_FILLFACTOR,
        fault_injector=None,
    ) -> None:
        if definition.hypothetical:
            raise ExecutorError(
                f"cannot materialize hypothetical index {definition.name!r}"
            )
        self.definition = definition
        self._table = table
        self._fillfactor = fillfactor

        # Storage-layer fault surface: the build slot itself, then one
        # page.read per key column pulled off the heap. With no injector
        # active both checks are no-ops; an injected fault aborts the
        # build before anything is published (see Database.create_index).
        faults.check("index.build", definition.name, fault_injector)
        columns = []
        for name in definition.columns:
            faults.check(
                "page.read", f"{table.name}.{name}", fault_injector
            )
            columns.append(heap.column(name))
        entries = [
            _LeafEntry(key=_wrap_key(tuple(col[i] for col in columns)), row_id=i)
            for i in range(heap.row_count)
        ]
        entries.sort(key=lambda e: e.key)
        self._entries = entries
        self._keys = [e.key for e in entries]

        self._entry_width = self._compute_entry_width(table, definition, heap)
        self._leaf_page_count = self._compute_leaf_pages(len(entries))
        self._height = self._compute_height(len(entries))

    # ------------------------------------------------------------------
    # Page accounting

    @staticmethod
    def _compute_entry_width(table: Table, definition: Index, heap: HeapFile) -> int:
        widths_and_aligns: list[tuple[int, int]] = []
        for name in definition.columns:
            dtype = table.column(name).dtype
            if dtype.typlen is not None:
                avg = dtype.typlen
            else:
                values = [v for v in heap.column(name) if v is not None]
                if values:
                    avg = max(
                        1, round(sum(dtype.value_width(v) for v in values) / len(values))
                    )
                else:
                    avg = dtype.default_width
            widths_and_aligns.append((avg, dtype.typalign))
        return aligned_row_width(widths_and_aligns, INDEX_ROW_OVERHEAD)

    def _compute_leaf_pages(self, entry_count: int) -> int:
        if entry_count == 0:
            return 1
        usable = (BLOCK_SIZE - PAGE_HEADER_SIZE) * self._fillfactor
        per_page = max(1, int(usable // self._entry_width))
        return max(1, math.ceil(entry_count / per_page))

    def _compute_height(self, entry_count: int) -> int:
        """Tree height above the leaf level (0 when a single leaf)."""
        if entry_count == 0:
            return 0
        fanout = max(2, (BLOCK_SIZE - PAGE_HEADER_SIZE) // max(8, self._entry_width))
        pages = self._leaf_page_count
        height = 0
        while pages > 1:
            pages = math.ceil(pages / fanout)
            height += 1
        return height

    @property
    def leaf_page_count(self) -> int:
        return self._leaf_page_count

    @property
    def height(self) -> int:
        return self._height

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    @property
    def size_bytes(self) -> int:
        return self._leaf_page_count * BLOCK_SIZE

    def leaf_page_of_position(self, position: int) -> int:
        """Which leaf page holds the entry at sorted ``position``."""
        if not self._entries:
            return 0
        per_page = max(1, math.ceil(len(self._entries) / self._leaf_page_count))
        return position // per_page

    # ------------------------------------------------------------------
    # Search

    def search_range(
        self,
        low: tuple[Any, ...] | None,
        high: tuple[Any, ...] | None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[tuple[int, int]]:
        """Yield ``(row_id, leaf_page)`` for keys in [low, high], key order.

        Bounds are prefixes of the key (shorter tuples match any suffix).
        ``None`` bounds are open. NULL key entries never match a bounded
        range (SQL comparisons with NULL are unknown).
        """
        start = 0
        if low is not None:
            wrapped = _wrap_key(low)
            if low_inclusive:
                start = bisect.bisect_left(self._keys, wrapped)
            else:
                start = bisect.bisect_right(self._keys, self._pad_high(wrapped))

        end = len(self._entries)
        if high is not None:
            wrapped = _wrap_key(high)
            if high_inclusive:
                end = bisect.bisect_right(self._keys, self._pad_high(wrapped))
            else:
                end = bisect.bisect_left(self._keys, wrapped)

        for position in range(start, end):
            entry = self._entries[position]
            if self._key_has_null(entry.key, low, high):
                continue
            yield entry.row_id, self.leaf_page_of_position(position)

    def scan_all(self) -> Iterator[tuple[int, int]]:
        """Full index scan in key order (NULL keys last)."""
        for position, entry in enumerate(self._entries):
            yield entry.row_id, self.leaf_page_of_position(position)

    @staticmethod
    def _key_has_null(
        key: tuple[_KeyPart, ...],
        low: tuple[Any, ...] | None,
        high: tuple[Any, ...] | None,
    ) -> bool:
        bound_len = max(
            len(low) if low is not None else 0, len(high) if high is not None else 0
        )
        return any(part.value is None for part in key[:bound_len])

    @staticmethod
    def _pad_high(key: tuple[_KeyPart, ...]) -> tuple:
        """Extend a prefix bound so bisect treats it as +inf in the suffix."""
        return key + (_InfinityPart(),)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BTreeIndex({self.definition.name!r}, entries={self.entry_count}, "
            f"leaves={self.leaf_page_count})"
        )


class _InfinityPart:
    """Sorts after every _KeyPart, including NULL."""

    __slots__ = ()

    def __lt__(self, other: object) -> bool:
        return False

    def __gt__(self, other: object) -> bool:
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _InfinityPart)

"""Storage engine: heap files, real B-Tree indexes, and the Database facade.

This substrate exists so that what-if estimates can be *validated*: the
demo's first scenario lets the DBA "compare the execution plan of the
what-if design with the execution plan of the same materialized physical
design". Materializing here means building actual page-accounted heaps
and B-Trees and running plans against them.
"""

from repro.storage.btree import BTreeIndex
from repro.storage.database import Database
from repro.storage.heap import HeapFile, Relation

__all__ = ["BTreeIndex", "Database", "HeapFile", "Relation"]

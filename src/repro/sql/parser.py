"""Recursive-descent parser for the supported SELECT subset.

Grammar (informal)::

    select    := SELECT [DISTINCT] targets FROM from_list
                 [WHERE expr] [GROUP BY expr_list [HAVING expr]]
                 [ORDER BY sort_list] [LIMIT n]
    targets   := '*' | target (',' target)*
    target    := expr [[AS] ident]
    from_list := from_item (',' from_item)*
    from_item := table_ref ( [INNER] JOIN table_ref ON expr )*
    table_ref := ident [[AS] ident]
    expr      := or_expr with standard precedence:
                 OR < AND < NOT < comparison/BETWEEN/IN/LIKE/IS < add < mul < unary

``JOIN ... ON`` is normalized away: joined tables are appended to the
statement's table list and ON conditions are ANDed into WHERE, which is
equivalent for inner joins and keeps the optimizer's input uniform.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.sql.ast_nodes import (
    BetweenExpr,
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    InExpr,
    IsNullExpr,
    LikeExpr,
    Literal,
    SelectItem,
    SelectStmt,
    SortItem,
    Star,
    TableRef,
    UnaryOp,
    conjoin,
)
from repro.sql.tokenizer import Token, TokenType, tokenize

_COMPARISON_OPS = {"=", "<", ">", "<=", ">=", "<>", "!="}


class _Parser:
    """Token-stream cursor with the usual peek/expect helpers."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- cursor helpers -------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def accept_keyword(self, *names: str) -> bool:
        if self.current.is_keyword(*names):
            self.advance()
            return True
        return False

    def expect_keyword(self, name: str) -> None:
        if not self.accept_keyword(name):
            raise ParseError(f"expected {name.upper()}, found {self.current.value!r}")

    def accept_punct(self, value: str) -> bool:
        token = self.current
        if token.type is TokenType.PUNCT and token.value == value:
            self.advance()
            return True
        return False

    def expect_punct(self, value: str) -> None:
        if not self.accept_punct(value):
            raise ParseError(f"expected {value!r}, found {self.current.value!r}")

    def accept_operator(self, *values: str) -> str | None:
        token = self.current
        if token.type is TokenType.OPERATOR and token.value in values:
            self.advance()
            return token.value
        return None

    def expect_ident(self) -> str:
        token = self.current
        if token.type is TokenType.IDENT:
            self.advance()
            return token.value
        # Unreserved keywords double as identifiers (e.g. a column "count"
        # would be unusual, but aggregate names appear as functions only).
        raise ParseError(f"expected identifier, found {token.value!r}")

    # -- statement ------------------------------------------------------

    def parse_select(self) -> SelectStmt:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        targets = self._parse_targets()
        self.expect_keyword("from")
        tables, join_conds = self._parse_from_list()

        where = None
        if self.accept_keyword("where"):
            where = self._parse_expr()
        where = conjoin(join_conds + ([where] if where is not None else []))

        group_by: tuple[Expr, ...] = ()
        having = None
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by = tuple(self._parse_expr_list())
            if self.accept_keyword("having"):
                having = self._parse_expr()

        order_by: tuple[SortItem, ...] = ()
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by = tuple(self._parse_sort_list())

        limit = None
        if self.accept_keyword("limit"):
            token = self.current
            if token.type is not TokenType.NUMBER:
                raise ParseError(f"LIMIT expects a number, found {token.value!r}")
            self.advance()
            limit = int(float(token.value))

        self.accept_punct(";")
        if self.current.type is not TokenType.EOF:
            raise ParseError(f"unexpected trailing input: {self.current.value!r}")
        return SelectStmt(
            targets=targets,
            tables=tuple(tables),
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def _parse_targets(self) -> tuple[SelectItem, ...]:
        items: list[SelectItem] = [self._parse_target()]
        while self.accept_punct(","):
            items.append(self._parse_target())
        return tuple(items)

    def _parse_target(self) -> SelectItem:
        expr = self._parse_expr()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        elif self.current.type is TokenType.IDENT:
            alias = self.expect_ident()
        return SelectItem(expr=expr, alias=alias)

    def _parse_from_list(self) -> tuple[list[TableRef], list[Expr]]:
        tables: list[TableRef] = []
        join_conds: list[Expr] = []
        self._parse_from_item(tables, join_conds)
        while self.accept_punct(","):
            self._parse_from_item(tables, join_conds)
        return tables, join_conds

    def _parse_from_item(self, tables: list[TableRef], join_conds: list[Expr]) -> None:
        tables.append(self._parse_table_ref())
        while True:
            if self.accept_keyword("inner"):
                self.expect_keyword("join")
            elif not self.accept_keyword("join"):
                break
            tables.append(self._parse_table_ref())
            self.expect_keyword("on")
            join_conds.append(self._parse_expr())

    def _parse_table_ref(self) -> TableRef:
        name = self.expect_ident()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        elif self.current.type is TokenType.IDENT:
            alias = self.expect_ident()
        return TableRef(name=name, alias=alias)

    def _parse_sort_list(self) -> list[SortItem]:
        items = [self._parse_sort_item()]
        while self.accept_punct(","):
            items.append(self._parse_sort_item())
        return items

    def _parse_sort_item(self) -> SortItem:
        expr = self._parse_expr()
        descending = False
        if self.accept_keyword("desc"):
            descending = True
        else:
            self.accept_keyword("asc")
        return SortItem(expr=expr, descending=descending)

    def _parse_expr_list(self) -> list[Expr]:
        items = [self._parse_expr()]
        while self.accept_punct(","):
            items.append(self._parse_expr())
        return items

    # -- expressions ----------------------------------------------------

    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self.accept_keyword("or"):
            left = BinaryOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self.accept_keyword("and"):
            left = BinaryOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self.accept_keyword("not"):
            return UnaryOp("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()

        negated = False
        if self.current.is_keyword("not"):
            # lookahead: NOT BETWEEN / NOT IN / NOT LIKE
            nxt = self._tokens[self._pos + 1]
            if nxt.is_keyword("between", "in", "like"):
                self.advance()
                negated = True

        if self.accept_keyword("between"):
            low = self._parse_additive()
            self.expect_keyword("and")
            high = self._parse_additive()
            return BetweenExpr(expr=left, low=low, high=high, negated=negated)
        if self.accept_keyword("in"):
            self.expect_punct("(")
            items = [self._parse_expr()]
            while self.accept_punct(","):
                items.append(self._parse_expr())
            self.expect_punct(")")
            return InExpr(expr=left, items=tuple(items), negated=negated)
        if self.accept_keyword("like"):
            return LikeExpr(expr=left, pattern=self._parse_additive(), negated=negated)
        if self.accept_keyword("is"):
            is_negated = self.accept_keyword("not")
            self.expect_keyword("null")
            return IsNullExpr(expr=left, negated=is_negated)

        op = self.accept_operator(*_COMPARISON_OPS)
        if op is not None:
            if op == "!=":
                op = "<>"
            return BinaryOp(op, left, self._parse_additive())
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            op = self.accept_operator("+", "-", "||")
            if op is None:
                return left
            left = BinaryOp(op, left, self._parse_multiplicative())

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            op = self.accept_operator("*", "/", "%")
            if op is None:
                return left
            left = BinaryOp(op, left, self._parse_unary())

    def _parse_unary(self) -> Expr:
        if self.accept_operator("-"):
            operand = self._parse_unary()
            if isinstance(operand, Literal) and isinstance(operand.value, (int, float)):
                return Literal(-operand.value)
            return UnaryOp("-", operand)
        self.accept_operator("+")
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self.current

        if token.type is TokenType.NUMBER:
            self.advance()
            text = token.value
            value = float(text) if any(c in text for c in ".eE") else int(text)
            return Literal(value)
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.is_keyword("null"):
            self.advance()
            return Literal(None)
        if token.is_keyword("true"):
            self.advance()
            return Literal(True)
        if token.is_keyword("false"):
            self.advance()
            return Literal(False)
        if token.type is TokenType.OPERATOR and token.value == "*":
            self.advance()
            return Star()
        if self.accept_punct("("):
            expr = self._parse_expr()
            self.expect_punct(")")
            return expr
        if token.is_keyword("count", "sum", "avg", "min", "max"):
            return self._parse_func_call(token.value)
        if token.type is TokenType.IDENT:
            return self._parse_ident_expr()
        raise ParseError(f"unexpected token {token.value!r} in expression")

    def _parse_func_call(self, name: str) -> Expr:
        self.advance()
        self.expect_punct("(")
        distinct = self.accept_keyword("distinct")
        args: list[Expr] = []
        if not self.accept_punct(")"):
            args.append(self._parse_expr())
            while self.accept_punct(","):
                args.append(self._parse_expr())
            self.expect_punct(")")
        return FuncCall(name=name, args=tuple(args), distinct=distinct)

    def _parse_ident_expr(self) -> Expr:
        name = self.expect_ident()
        # Scalar function call: ident(...)
        if self.current.type is TokenType.PUNCT and self.current.value == "(":
            return self._parse_func_call_with_name(name)
        if self.accept_punct("."):
            if self.current.type is TokenType.OPERATOR and self.current.value == "*":
                self.advance()
                return Star(table=name)
            column = self.expect_ident()
            return ColumnRef(column=column, table=name)
        return ColumnRef(column=name)

    def _parse_func_call_with_name(self, name: str) -> Expr:
        self.expect_punct("(")
        args: list[Expr] = []
        if not self.accept_punct(")"):
            args.append(self._parse_expr())
            while self.accept_punct(","):
                args.append(self._parse_expr())
            self.expect_punct(")")
        return FuncCall(name=name.lower(), args=tuple(args))


def parse_select(sql: str) -> SelectStmt:
    """Parse one SELECT statement from ``sql``.

    Raises:
        TokenizeError: on lexical errors.
        ParseError: when the statement is outside the supported grammar.
    """
    return _Parser(tokenize(sql)).parse_select()

"""SQL frontend: tokenizer, parser, binder, deparser, and evaluation.

Supports the analytic SELECT subset PARINDA's workloads exercise:
multi-table joins (comma syntax and ``JOIN ... ON``), conjunctive and
disjunctive WHERE clauses, BETWEEN / IN / LIKE / IS NULL predicates,
aggregates with GROUP BY / HAVING, ORDER BY, DISTINCT, and LIMIT.
"""

from repro.sql.ast_nodes import (
    BetweenExpr,
    BinaryOp,
    ColumnRef,
    FuncCall,
    InExpr,
    IsNullExpr,
    LikeExpr,
    Literal,
    SelectItem,
    SelectStmt,
    SortItem,
    Star,
    TableRef,
    UnaryOp,
)
from repro.sql.binder import BoundQuery, Binder, RangeTableEntry, bind
from repro.sql.parser import parse_select
from repro.sql.printer import to_sql

__all__ = [
    "BetweenExpr",
    "BinaryOp",
    "Binder",
    "BoundQuery",
    "ColumnRef",
    "FuncCall",
    "InExpr",
    "IsNullExpr",
    "LikeExpr",
    "Literal",
    "RangeTableEntry",
    "SelectItem",
    "SelectStmt",
    "SortItem",
    "Star",
    "TableRef",
    "UnaryOp",
    "bind",
    "parse_select",
    "to_sql",
]

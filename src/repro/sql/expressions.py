"""Runtime expression evaluation over row contexts.

The executor evaluates bound expressions against a *row context*: a
mapping from ``(table_alias, column_name)`` to a Python value. SQL
three-valued logic is honored: any comparison with NULL yields NULL
(represented as ``None``), AND/OR/NOT follow Kleene logic, and WHERE
keeps only rows where the predicate is strictly true.
"""

from __future__ import annotations

import math
import re
from functools import lru_cache
from typing import Any, Mapping

from repro.errors import ExecutorError
from repro.sql.ast_nodes import (
    BetweenExpr,
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    InExpr,
    IsNullExpr,
    LikeExpr,
    Literal,
    Star,
    UnaryOp,
)

RowContext = Mapping[tuple[str, str], Any]

_SCALAR_FUNCS = {
    "abs": abs,
    "sqrt": math.sqrt,
    "floor": math.floor,
    "ceil": math.ceil,
    "ln": math.log,
    "log": math.log10,
    "power": pow,
    "round": round,
    "lower": lambda s: s.lower(),
    "upper": lambda s: s.upper(),
    "length": len,
}


def evaluate(expr: Expr, row: RowContext) -> Any:
    """Evaluate ``expr`` against ``row``; returns ``None`` for SQL NULL."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        if expr.table is None:
            raise ExecutorError(f"unbound column reference {expr.column!r}")
        try:
            return row[(expr.table, expr.column)]
        except KeyError:
            raise ExecutorError(
                f"row context missing {expr.table}.{expr.column}"
            ) from None
    if isinstance(expr, BinaryOp):
        return _eval_binary(expr, row)
    if isinstance(expr, UnaryOp):
        return _eval_unary(expr, row)
    if isinstance(expr, BetweenExpr):
        value = evaluate(expr.expr, row)
        low = evaluate(expr.low, row)
        high = evaluate(expr.high, row)
        if value is None or low is None or high is None:
            return None
        result = low <= value <= high
        return (not result) if expr.negated else result
    if isinstance(expr, InExpr):
        return _eval_in(expr, row)
    if isinstance(expr, LikeExpr):
        value = evaluate(expr.expr, row)
        pattern = evaluate(expr.pattern, row)
        if value is None or pattern is None:
            return None
        result = like_match(str(value), str(pattern))
        return (not result) if expr.negated else result
    if isinstance(expr, IsNullExpr):
        value = evaluate(expr.expr, row)
        return (value is not None) if expr.negated else (value is None)
    if isinstance(expr, FuncCall):
        return _eval_func(expr, row)
    if isinstance(expr, Star):
        raise ExecutorError("'*' cannot be evaluated as a scalar")
    raise ExecutorError(f"cannot evaluate node {type(expr).__name__}")


def _eval_binary(expr: BinaryOp, row: RowContext) -> Any:
    op = expr.op
    if op == "and":
        left = evaluate(expr.left, row)
        if left is False:
            return False
        right = evaluate(expr.right, row)
        if right is False:
            return False
        if left is None or right is None:
            return None
        return True
    if op == "or":
        left = evaluate(expr.left, row)
        if left is True:
            return True
        right = evaluate(expr.right, row)
        if right is True:
            return True
        if left is None or right is None:
            return None
        return False

    left = evaluate(expr.left, row)
    right = evaluate(expr.right, row)
    if left is None or right is None:
        return None
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExecutorError("division by zero")
        return left / right
    if op == "%":
        if right == 0:
            raise ExecutorError("division by zero")
        return left % right
    if op == "||":
        return str(left) + str(right)
    raise ExecutorError(f"unknown binary operator {op!r}")


def _eval_unary(expr: UnaryOp, row: RowContext) -> Any:
    value = evaluate(expr.operand, row)
    if expr.op == "not":
        if value is None:
            return None
        return not value
    if expr.op == "-":
        if value is None:
            return None
        return -value
    raise ExecutorError(f"unknown unary operator {expr.op!r}")


def _eval_in(expr: InExpr, row: RowContext) -> Any:
    value = evaluate(expr.expr, row)
    if value is None:
        return None
    saw_null = False
    for item in expr.items:
        candidate = evaluate(item, row)
        if candidate is None:
            saw_null = True
        elif candidate == value:
            return not expr.negated
    if saw_null:
        return None
    return expr.negated


def _eval_func(expr: FuncCall, row: RowContext) -> Any:
    if expr.is_aggregate:
        raise ExecutorError(
            f"aggregate {expr.name}() evaluated outside an aggregation node"
        )
    fn = _SCALAR_FUNCS.get(expr.name)
    if fn is None:
        raise ExecutorError(f"unknown function {expr.name!r}")
    args = [evaluate(a, row) for a in expr.args]
    if any(a is None for a in args):
        return None
    try:
        return fn(*args)
    except (ValueError, TypeError) as exc:
        raise ExecutorError(f"error evaluating {expr.name}(): {exc}") from exc


@lru_cache(maxsize=512)
def _compile_like(pattern: str) -> "re.Pattern[str]":
    """Translate a SQL LIKE pattern into an anchored regular expression."""
    out: list[str] = []
    i = 0
    while i < len(pattern):
        ch = pattern[i]
        if ch == "\\" and i + 1 < len(pattern):
            out.append(re.escape(pattern[i + 1]))
            i += 2
            continue
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
        i += 1
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def like_match(value: str, pattern: str) -> bool:
    """SQL LIKE semantics (``%`` any run, ``_`` one char, ``\\`` escapes)."""
    return _compile_like(pattern).match(value) is not None


def is_true(value: Any) -> bool:
    """WHERE-clause truth: NULL and False both reject the row."""
    return value is True

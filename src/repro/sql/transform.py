"""Generic bottom-up expression rewriting.

Used by the binder (qualifying column references) and the partition
rewriter (redirecting references to fragment tables). The transformer
rebuilds frozen AST nodes only when a child actually changed, so
untouched subtrees are shared.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.sql.ast_nodes import (
    BetweenExpr,
    BinaryOp,
    Expr,
    FuncCall,
    InExpr,
    IsNullExpr,
    LikeExpr,
    SelectItem,
    SelectStmt,
    SortItem,
    UnaryOp,
)

ExprTransform = Callable[[Expr], Expr]


def transform_expr(expr: Expr, fn: ExprTransform) -> Expr:
    """Rebuild ``expr`` bottom-up, applying ``fn`` to every node.

    ``fn`` receives each node *after* its children were transformed and
    returns a replacement (or the node unchanged).
    """
    rebuilt = _rebuild_children(expr, fn)
    return fn(rebuilt)


def _rebuild_children(expr: Expr, fn: ExprTransform) -> Expr:
    if isinstance(expr, BinaryOp):
        left = transform_expr(expr.left, fn)
        right = transform_expr(expr.right, fn)
        if left is expr.left and right is expr.right:
            return expr
        return replace(expr, left=left, right=right)
    if isinstance(expr, UnaryOp):
        operand = transform_expr(expr.operand, fn)
        return expr if operand is expr.operand else replace(expr, operand=operand)
    if isinstance(expr, FuncCall):
        args = tuple(transform_expr(a, fn) for a in expr.args)
        if all(new is old for new, old in zip(args, expr.args)):
            return expr
        return replace(expr, args=args)
    if isinstance(expr, BetweenExpr):
        inner = transform_expr(expr.expr, fn)
        low = transform_expr(expr.low, fn)
        high = transform_expr(expr.high, fn)
        if inner is expr.expr and low is expr.low and high is expr.high:
            return expr
        return replace(expr, expr=inner, low=low, high=high)
    if isinstance(expr, InExpr):
        inner = transform_expr(expr.expr, fn)
        items = tuple(transform_expr(i, fn) for i in expr.items)
        if inner is expr.expr and all(n is o for n, o in zip(items, expr.items)):
            return expr
        return replace(expr, expr=inner, items=items)
    if isinstance(expr, LikeExpr):
        inner = transform_expr(expr.expr, fn)
        pattern = transform_expr(expr.pattern, fn)
        if inner is expr.expr and pattern is expr.pattern:
            return expr
        return replace(expr, expr=inner, pattern=pattern)
    if isinstance(expr, IsNullExpr):
        inner = transform_expr(expr.expr, fn)
        return expr if inner is expr.expr else replace(expr, expr=inner)
    return expr


def transform_statement(stmt: SelectStmt, fn: ExprTransform) -> SelectStmt:
    """Apply ``fn`` to every expression in a SELECT statement."""
    targets = tuple(
        SelectItem(expr=transform_expr(t.expr, fn), alias=t.alias)
        for t in stmt.targets
    )
    where = transform_expr(stmt.where, fn) if stmt.where is not None else None
    group_by = tuple(transform_expr(g, fn) for g in stmt.group_by)
    having = transform_expr(stmt.having, fn) if stmt.having is not None else None
    order_by = tuple(
        SortItem(expr=transform_expr(s.expr, fn), descending=s.descending)
        for s in stmt.order_by
    )
    return replace(
        stmt,
        targets=targets,
        where=where,
        group_by=group_by,
        having=having,
        order_by=order_by,
    )

"""Deparser: AST back to SQL text.

Used by the partition rewriter to emit the rewritten workload ("the user
can save the rewritten queries for the new table partitions") and by
EXPLAIN output for predicates.
"""

from __future__ import annotations

from repro.sql.ast_nodes import (
    BetweenExpr,
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    InExpr,
    IsNullExpr,
    LikeExpr,
    Literal,
    SelectStmt,
    Star,
    UnaryOp,
)

# Lower number binds looser; used to decide where parentheses are needed.
_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "=": 4,
    "<>": 4,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "||": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


def expr_to_sql(expr: Expr) -> str:
    """Render an expression as SQL text."""
    return _render(expr, parent_precedence=0)


def _render(expr: Expr, parent_precedence: int) -> str:
    if isinstance(expr, Literal):
        return _render_literal(expr)
    if isinstance(expr, ColumnRef):
        return f"{expr.table}.{expr.column}" if expr.table else expr.column
    if isinstance(expr, Star):
        return f"{expr.table}.*" if expr.table else "*"
    if isinstance(expr, BinaryOp):
        precedence = _PRECEDENCE.get(expr.op, 4)
        op = expr.op.upper() if expr.op in ("and", "or") else expr.op
        text = (
            f"{_render(expr.left, precedence)} {op} "
            f"{_render(expr.right, precedence + 1)}"
        )
        if precedence < parent_precedence:
            return f"({text})"
        return text
    if isinstance(expr, UnaryOp):
        if expr.op == "not":
            text = f"NOT {_render(expr.operand, 3)}"
            return f"({text})" if parent_precedence > 3 else text
        return f"-{_render(expr.operand, 7)}"
    if isinstance(expr, FuncCall):
        args = ", ".join(_render(a, 0) for a in expr.args)
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({distinct}{args})"
    if isinstance(expr, BetweenExpr):
        not_kw = "NOT " if expr.negated else ""
        text = (
            f"{_render(expr.expr, 4)} {not_kw}BETWEEN "
            f"{_render(expr.low, 5)} AND {_render(expr.high, 5)}"
        )
        return f"({text})" if parent_precedence > 3 else text
    if isinstance(expr, InExpr):
        not_kw = "NOT " if expr.negated else ""
        items = ", ".join(_render(i, 0) for i in expr.items)
        return f"{_render(expr.expr, 4)} {not_kw}IN ({items})"
    if isinstance(expr, LikeExpr):
        not_kw = "NOT " if expr.negated else ""
        return f"{_render(expr.expr, 4)} {not_kw}LIKE {_render(expr.pattern, 5)}"
    if isinstance(expr, IsNullExpr):
        not_kw = "NOT " if expr.negated else ""
        return f"{_render(expr.expr, 4)} IS {not_kw}NULL"
    raise TypeError(f"cannot render expression node {type(expr).__name__}")


def _render_literal(lit: Literal) -> str:
    value = lit.value
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def to_sql(stmt: SelectStmt) -> str:
    """Render a SELECT statement as SQL text."""
    parts: list[str] = ["SELECT"]
    if stmt.distinct:
        parts.append("DISTINCT")
    targets = []
    for item in stmt.targets:
        text = expr_to_sql(item.expr)
        if item.alias:
            text += f" AS {item.alias}"
        targets.append(text)
    parts.append(", ".join(targets))

    tables = []
    for ref in stmt.tables:
        text = ref.name
        if ref.alias and ref.alias != ref.name:
            text += f" {ref.alias}"
        tables.append(text)
    parts.append("FROM " + ", ".join(tables))

    if stmt.where is not None:
        parts.append("WHERE " + expr_to_sql(stmt.where))
    if stmt.group_by:
        parts.append("GROUP BY " + ", ".join(expr_to_sql(g) for g in stmt.group_by))
    if stmt.having is not None:
        parts.append("HAVING " + expr_to_sql(stmt.having))
    if stmt.order_by:
        rendered = [
            expr_to_sql(s.expr) + (" DESC" if s.descending else "")
            for s in stmt.order_by
        ]
        parts.append("ORDER BY " + ", ".join(rendered))
    if stmt.limit is not None:
        parts.append(f"LIMIT {stmt.limit}")
    return " ".join(parts)

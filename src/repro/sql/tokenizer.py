"""Hand-written SQL tokenizer.

Produces a flat list of :class:`Token` objects. Keywords are
case-insensitive; identifiers are lower-cased unless double-quoted,
matching PostgreSQL's folding rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.errors import TokenizeError

KEYWORDS = frozenset(
    {
        "select",
        "distinct",
        "from",
        "where",
        "group",
        "order",
        "by",
        "having",
        "limit",
        "offset",
        "as",
        "and",
        "or",
        "not",
        "in",
        "between",
        "like",
        "is",
        "null",
        "true",
        "false",
        "join",
        "inner",
        "left",
        "right",
        "full",
        "outer",
        "cross",
        "on",
        "asc",
        "desc",
        "count",
        "sum",
        "avg",
        "min",
        "max",
    }
)


class TokenType(Enum):
    KEYWORD = auto()
    IDENT = auto()
    NUMBER = auto()
    STRING = auto()
    OPERATOR = auto()
    PUNCT = auto()
    EOF = auto()


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r})"


_OPERATORS = ("<>", "<=", ">=", "!=", "=", "<", ">", "+", "-", "*", "/", "%", "||")
_PUNCT = "(),.;"


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into a list ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise TokenizeError("unterminated block comment", i)
            i = end + 2
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            i = _lex_number(text, i, tokens)
            continue
        if ch == "'":
            i = _lex_string(text, i, tokens)
            continue
        if ch == '"':
            i = _lex_quoted_ident(text, i, tokens)
            continue
        if ch.isalpha() or ch == "_":
            i = _lex_word(text, i, tokens)
            continue
        matched_op = next((op for op in _OPERATORS if text.startswith(op, i)), None)
        if matched_op is not None:
            tokens.append(Token(TokenType.OPERATOR, matched_op, i))
            i += len(matched_op)
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise TokenizeError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _lex_number(text: str, start: int, tokens: list[Token]) -> int:
    i = start
    n = len(text)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = text[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            seen_exp = True
            i += 1
            if i < n and text[i] in "+-":
                i += 1
        else:
            break
    tokens.append(Token(TokenType.NUMBER, text[start:i], start))
    return i


def _lex_string(text: str, start: int, tokens: list[Token]) -> int:
    i = start + 1
    n = len(text)
    chunks: list[str] = []
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                chunks.append("'")
                i += 2
                continue
            tokens.append(Token(TokenType.STRING, "".join(chunks), start))
            return i + 1
        chunks.append(ch)
        i += 1
    raise TokenizeError("unterminated string literal", start)


def _lex_quoted_ident(text: str, start: int, tokens: list[Token]) -> int:
    end = text.find('"', start + 1)
    if end < 0:
        raise TokenizeError("unterminated quoted identifier", start)
    tokens.append(Token(TokenType.IDENT, text[start + 1 : end], start))
    return end + 1


def _lex_word(text: str, start: int, tokens: list[Token]) -> int:
    i = start
    n = len(text)
    while i < n and (text[i].isalnum() or text[i] == "_"):
        i += 1
    word = text[start:i].lower()
    token_type = TokenType.KEYWORD if word in KEYWORDS else TokenType.IDENT
    tokens.append(Token(token_type, word, start))
    return i

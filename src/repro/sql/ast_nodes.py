"""Abstract syntax tree for the supported SELECT subset.

All nodes are frozen dataclasses, so bound queries and rewritten queries
can share subtrees safely. Expression nodes implement ``children()`` so
generic walks (column collection, rewriting) need no per-node code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator


class Expr:
    """Base class for expression nodes."""

    def children(self) -> tuple["Expr", ...]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: number, string, boolean, or NULL (``value is None``)."""

    value: Any


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A possibly-qualified column reference, e.g. ``p.ra`` or ``ra``."""

    column: str
    table: str | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``t.*`` in a select list or ``count(*)``."""

    table: str | None = None


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Binary operator: comparisons, arithmetic, AND/OR, ``||``."""

    op: str
    left: Expr
    right: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary operator: ``NOT`` or arithmetic negation."""

    op: str
    operand: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class FuncCall(Expr):
    """Function call; ``count``, ``sum``, ``avg``, ``min``, ``max`` are
    aggregates, everything else is a scalar function."""

    name: str
    args: tuple[Expr, ...]
    distinct: bool = False

    AGGREGATES = frozenset({"count", "sum", "avg", "min", "max"})

    @property
    def is_aggregate(self) -> bool:
        return self.name in self.AGGREGATES

    def children(self) -> tuple[Expr, ...]:
        return self.args


@dataclass(frozen=True)
class BetweenExpr(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    expr: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.expr, self.low, self.high)


@dataclass(frozen=True)
class InExpr(Expr):
    """``expr [NOT] IN (item, ...)`` with literal items only."""

    expr: Expr
    items: tuple[Expr, ...]
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.expr,) + self.items


@dataclass(frozen=True)
class LikeExpr(Expr):
    """``expr [NOT] LIKE pattern``."""

    expr: Expr
    pattern: Expr
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.expr, self.pattern)


@dataclass(frozen=True)
class IsNullExpr(Expr):
    """``expr IS [NOT] NULL``."""

    expr: Expr
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.expr,)


@dataclass(frozen=True)
class SelectItem:
    """One entry of the select list."""

    expr: Expr
    alias: str | None = None


@dataclass(frozen=True)
class SortItem:
    """One entry of ORDER BY."""

    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class TableRef:
    """A FROM-clause table with an optional alias."""

    name: str
    alias: str | None = None

    @property
    def effective_alias(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class SelectStmt:
    """A parsed SELECT statement.

    ``JOIN ... ON`` syntax is flattened at parse time: joined tables land
    in ``tables`` and their ON conditions are ANDed into ``where``. Only
    inner joins are supported, which covers the paper's analytic
    workloads.
    """

    targets: tuple[SelectItem, ...]
    tables: tuple[TableRef, ...]
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    order_by: tuple[SortItem, ...] = ()
    limit: int | None = None
    distinct: bool = False


def conjuncts(expr: Expr | None) -> list[Expr]:
    """Split an expression on top-level ANDs into a flat conjunct list."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def conjoin(exprs: list[Expr]) -> Expr | None:
    """Combine conjuncts back into a single AND tree (None if empty)."""
    if not exprs:
        return None
    result = exprs[0]
    for nxt in exprs[1:]:
        result = BinaryOp("and", result, nxt)
    return result


def referenced_columns(expr: Expr) -> list[ColumnRef]:
    """All column references in ``expr``, in walk order."""
    return [node for node in expr.walk() if isinstance(node, ColumnRef)]


def referenced_tables(expr: Expr) -> set[str]:
    """All table qualifiers mentioned in ``expr`` (bound queries only)."""
    names: set[str] = set()
    for node in expr.walk():
        if isinstance(node, ColumnRef) and node.table:
            names.add(node.table)
        elif isinstance(node, Star) and node.table:
            names.add(node.table)
    return names

"""Name resolution: attach catalog metadata to a parsed statement.

The binder resolves every column reference to a unique range-table entry
(table alias), expands ``*``, and produces a :class:`BoundQuery` — the
optimizer's input. After binding, every :class:`ColumnRef` carries its
table alias, so downstream code never guesses scopes again.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.catalog.catalog import Catalog
from repro.catalog.datatypes import DataType
from repro.catalog.schema import Table
from repro.errors import BindError
from repro.sql.ast_nodes import (
    ColumnRef,
    Expr,
    FuncCall,
    SelectItem,
    SelectStmt,
    Star,
    conjuncts,
    referenced_tables,
)
from repro.sql.transform import transform_expr, transform_statement


@dataclass(frozen=True)
class RangeTableEntry:
    """One FROM-clause relation: a unique alias bound to a catalog table."""

    alias: str
    table: Table


@dataclass(frozen=True)
class BoundQuery:
    """A fully-resolved query, ready for the optimizer.

    Attributes:
        statement: The statement with all column references qualified and
            stars expanded.
        rels: Range table, in FROM order; aliases are unique.
        quals: WHERE conjuncts (each an expression over qualified refs).
        required_columns: Per-alias set of columns the query touches
            anywhere (select list, quals, grouping, ordering) — the
            attribute-usage input for the AutoPart advisor and for
            index-only-scan decisions.
    """

    statement: SelectStmt
    rels: tuple[RangeTableEntry, ...]
    quals: tuple[Expr, ...]
    required_columns: dict[str, frozenset[str]]

    def rel(self, alias: str) -> RangeTableEntry:
        for entry in self.rels:
            if entry.alias == alias:
                return entry
        raise BindError(f"no relation bound to alias {alias!r}")

    @property
    def aliases(self) -> tuple[str, ...]:
        return tuple(entry.alias for entry in self.rels)

    @property
    def has_aggregates(self) -> bool:
        for item in self.statement.targets:
            if any(
                isinstance(node, FuncCall) and node.is_aggregate
                for node in item.expr.walk()
            ):
                return True
        return False


class Binder:
    """Binds parsed statements against a catalog."""

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog

    def bind(self, stmt: SelectStmt) -> BoundQuery:
        rels = self._bind_range_table(stmt)
        by_alias = {entry.alias: entry for entry in rels}
        stmt = self._resolve_output_aliases(stmt)

        def qualify(expr: Expr) -> Expr:
            if isinstance(expr, ColumnRef):
                return self._resolve_column(expr, rels, by_alias)
            return expr

        qualified = transform_statement(stmt, qualify)
        qualified = replace(
            qualified, targets=self._expand_stars(qualified.targets, rels)
        )
        # Aggregate queries with an empty select-list star are nonsensical
        # after expansion; catch genuinely empty targets.
        if not qualified.targets:
            raise BindError("query selects no columns")

        quals = tuple(conjuncts(qualified.where))
        for qual in quals:
            self._check_single_query_scope(qual, by_alias)

        required = self._collect_required_columns(qualified, rels)
        return BoundQuery(
            statement=qualified,
            rels=tuple(rels),
            quals=quals,
            required_columns=required,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _resolve_output_aliases(stmt: SelectStmt) -> SelectStmt:
        """Replace select-list aliases in ORDER BY / GROUP BY / HAVING.

        ``SELECT avg(z) AS meanz ... ORDER BY meanz`` sorts by the target
        expression, matching PostgreSQL's output-name resolution.
        """
        alias_map = {
            item.alias: item.expr for item in stmt.targets if item.alias is not None
        }
        if not alias_map:
            return stmt

        def substitute(expr: Expr) -> Expr:
            if (
                isinstance(expr, ColumnRef)
                and expr.table is None
                and expr.column in alias_map
            ):
                return alias_map[expr.column]
            return expr

        order_by = tuple(
            replace(item, expr=transform_expr(item.expr, substitute))
            for item in stmt.order_by
        )
        group_by = tuple(transform_expr(g, substitute) for g in stmt.group_by)
        having = (
            transform_expr(stmt.having, substitute)
            if stmt.having is not None
            else None
        )
        return replace(stmt, order_by=order_by, group_by=group_by, having=having)

    def _bind_range_table(self, stmt: SelectStmt) -> list[RangeTableEntry]:
        if not stmt.tables:
            raise BindError("query has no FROM clause")
        rels: list[RangeTableEntry] = []
        seen: set[str] = set()
        for ref in stmt.tables:
            alias = ref.effective_alias
            if alias in seen:
                raise BindError(f"duplicate table alias {alias!r}")
            seen.add(alias)
            if not self._catalog.has_table(ref.name):
                raise BindError(f"unknown table {ref.name!r}")
            rels.append(RangeTableEntry(alias=alias, table=self._catalog.table(ref.name)))
        return rels

    def _resolve_column(
        self,
        ref: ColumnRef,
        rels: list[RangeTableEntry],
        by_alias: dict[str, RangeTableEntry],
    ) -> ColumnRef:
        if ref.table is not None:
            entry = by_alias.get(ref.table)
            if entry is None:
                raise BindError(f"unknown table alias {ref.table!r} in {ref}")
            if not entry.table.has_column(ref.column):
                raise BindError(
                    f"table {entry.table.name!r} (alias {entry.alias!r}) has no "
                    f"column {ref.column!r}"
                )
            return ref
        matches = [e for e in rels if e.table.has_column(ref.column)]
        if not matches:
            raise BindError(f"unknown column {ref.column!r}")
        if len(matches) > 1:
            aliases = ", ".join(e.alias for e in matches)
            raise BindError(f"column {ref.column!r} is ambiguous across: {aliases}")
        return ColumnRef(column=ref.column, table=matches[0].alias)

    def _expand_stars(
        self, targets: tuple[SelectItem, ...], rels: list[RangeTableEntry]
    ) -> tuple[SelectItem, ...]:
        expanded: list[SelectItem] = []
        for item in targets:
            if isinstance(item.expr, Star):
                star = item.expr
                scope = (
                    [e for e in rels if e.alias == star.table] if star.table else rels
                )
                if star.table and not scope:
                    raise BindError(f"unknown table alias {star.table!r} in select *")
                for entry in scope:
                    for column in entry.table.columns:
                        expanded.append(
                            SelectItem(
                                expr=ColumnRef(column=column.name, table=entry.alias)
                            )
                        )
            else:
                self._reject_bare_star_in_expr(item.expr)
                expanded.append(item)
        return tuple(expanded)

    @staticmethod
    def _reject_bare_star_in_expr(expr: Expr) -> None:
        for node in expr.walk():
            if isinstance(node, Star):
                parent_ok = isinstance(expr, FuncCall) and expr.name == "count"
                if not (parent_ok or _star_inside_count(expr, node)):
                    raise BindError("'*' is only allowed in count(*)")

    @staticmethod
    def _check_single_query_scope(qual: Expr, by_alias: dict) -> None:
        for alias in referenced_tables(qual):
            if alias not in by_alias:
                raise BindError(f"qual references unknown alias {alias!r}")

    @staticmethod
    def _collect_required_columns(
        stmt: SelectStmt, rels: list[RangeTableEntry]
    ) -> dict[str, frozenset[str]]:
        needed: dict[str, set[str]] = {entry.alias: set() for entry in rels}

        def visit(expr: Expr) -> Expr:
            if isinstance(expr, ColumnRef) and expr.table is not None:
                needed[expr.table].add(expr.column)
            return expr

        transform_statement(stmt, visit)
        return {alias: frozenset(cols) for alias, cols in needed.items()}


def _star_inside_count(root: Expr, star: Expr) -> bool:
    """True if ``star`` appears directly inside a count() call in ``root``."""
    for node in root.walk():
        if isinstance(node, FuncCall) and node.name == "count":
            if any(child is star for child in node.args):
                return True
    return False


def bind(catalog: Catalog, stmt: SelectStmt) -> BoundQuery:
    """Convenience wrapper around :class:`Binder`."""
    return Binder(catalog).bind(stmt)


def column_dtype(query: BoundQuery, ref: ColumnRef) -> DataType:
    """Data type of a bound column reference."""
    if ref.table is None:
        raise BindError(f"column reference {ref} was never bound")
    entry = query.rel(ref.table)
    return entry.table.column(ref.column).dtype


def transform_bound_expr(expr: Expr, fn) -> Expr:
    """Re-export of :func:`transform_expr` for callers of this module."""
    return transform_expr(expr, fn)

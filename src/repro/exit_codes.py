"""CLI exit codes, in one place, with their documentation.

Supervisors (systemd units, CI chaos legs, operator runbooks) branch on
these numbers, so they are part of the public contract: every code
lives here with a one-line meaning, the CLI imports them instead of
scattering literals, and a doc-drift test pins the README's exit-code
table to :data:`EXIT_CODE_DOCS` — a new code cannot land undocumented.

Codes 1 and 2 are deliberately not claimed: Python reserves 1 for an
unhandled error (any uncaught :class:`~repro.errors.ReproError`
message) and argparse exits 2 on usage errors.
"""

from __future__ import annotations

#: Clean exit.
EXIT_OK = 0

#: The tune stream died mid-read (``stream.read`` fault, broken pipe);
#: a final checkpoint was flushed so ``--state`` resumes exactly there.
EXIT_STREAM_LOST = 3

#: An apply journal blocks the request (a different in-flight delta);
#: an operator must resume or roll back the journaled run first.
EXIT_APPLY_CONFLICT = 4

#: A confirmed regression rolled a replica back and froze the fleet;
#: re-tuning stays paused until acknowledged with ``fleet --serve
#: --thaw``.
EXIT_ROLLOUT_FROZEN = 5

#: This daemon's state-store lease was superseded (a newer daemon took
#: over after failover); it exited rather than corrupt the new owner's
#: journal. Do not restart it against the same store without expecting
#: to fence out the other side.
EXIT_STALE_LEASE = 6

#: code -> one-line meaning; the README table is pinned to this dict.
EXIT_CODE_DOCS: dict[int, str] = {
    EXIT_OK: "success",
    EXIT_STREAM_LOST: "tune stream lost mid-read; final checkpoint flushed",
    EXIT_APPLY_CONFLICT: "apply journal conflict; operator must resolve",
    EXIT_ROLLOUT_FROZEN: "regression rollback froze the fleet; thaw to resume",
    EXIT_STALE_LEASE: "state-store lease superseded; a newer daemon owns it",
}

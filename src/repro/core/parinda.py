"""The Parinda facade: one object, three components.

Mirrors the system architecture of Figure 1: a database with a
hook-modified optimizer underneath, and on top the interactive
component, the automatic index advisor, and the automatic partition
advisor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.advisor.ilp_advisor import AdvisorResult, IlpIndexAdvisor
from repro.baselines.greedy import GreedyIndexAdvisor
from repro.catalog.schema import Index, index_signature
from repro.catalog.sizing import BLOCK_SIZE
from repro.core.interactive import InteractiveDesigner
from repro.online.tuner import OnlineTuner
from repro.optimizer.config import PlannerConfig
from repro.optimizer.planner import Planner
from repro.parallel.caches import CostCache
from repro.partitioning.autopart import AutoPartAdvisor, PartitionAdvisorResult
from repro.resilience import state as resilience_state
from repro.resilience.apply import (
    ApplyExecutor,
    ApplyReport,
    ValidationEntry,
    materialized_name,
)
from repro.resilience.faults import FaultInjector
from repro.resilience.store import StateStore
from repro.storage.database import Database
from repro.workloads.workload import Query, Workload


@dataclass
class CombinedResult:
    """Outcome of the partitions-then-indexes pipeline."""

    partitions: PartitionAdvisorResult
    indexes: AdvisorResult
    cost_before: float
    cost_after: float

    @property
    def speedup(self) -> float:
        if self.cost_after <= 0:
            return float("inf")
        return self.cost_before / self.cost_after


class Parinda:
    """PARtition and INDex Advisor over one database."""

    def __init__(
        self,
        database: Database,
        config: PlannerConfig | None = None,
        cache_max_entries: int | None = None,
        fault_injector: FaultInjector | None = None,
    ) -> None:
        """Args:
        cache_max_entries: Per-section bound on the facade's shared
            :class:`CostCache` (LRU, stale catalog versions evicted
            first). ``None`` keeps it unbounded — fine for one-shot
            scripts, not for a long-lived process; :meth:`online`
            defaults it to a bound when unset.
        fault_injector: Resilience-test harness threaded through to
            every advisor and tuning session created by this facade
            (see :mod:`repro.resilience`). ``None`` defers to the
            ``REPRO_FAULTS`` environment variable; an idle injector
            changes nothing observable.
        """
        self._db = database
        self._config = config or PlannerConfig()
        self._fault_injector = fault_injector
        # Shared across every advisor call made through this facade:
        # bound queries, Equation-1 sizes, and scan costs carry over
        # between suggest_* calls as long as the catalog version holds.
        self._cost_cache = CostCache(max_entries=cache_max_entries)
        self._cache_max_entries = cache_max_entries
        self._cache_bounded = cache_max_entries is not None
        self._planner = Planner(self._db.catalog, self._config)
        self._plan_cost_cache: dict[tuple, float] = {}

    @property
    def database(self) -> Database:
        return self._db

    # ------------------------------------------------------------------
    # Scenario 1: interactive partition/index selection

    def interactive(self) -> InteractiveDesigner:
        """A fresh interactive what-if designer session."""
        return InteractiveDesigner(self._db)

    # ------------------------------------------------------------------
    # Scenario 4: continuous (online) tuning

    def online(
        self,
        budget_pages: int | None = None,
        budget_bytes: int | None = None,
        state_file: str | None = None,
        state_store: StateStore | None = None,
        **knobs,
    ) -> OnlineTuner:
        """An online tuning session over this database's catalog.

        Returns an :class:`~repro.online.tuner.OnlineTuner` usable as a
        context manager (``__exit__`` drains any background work)::

            with parinda.online(budget_bytes=16 << 20) as tuner:
                for sql in statement_stream:
                    tuner.observe(sql)
                print(tuner.design)

        When this facade's cache was constructed with a bound, the
        tuner shares it (re-advises reuse everything suggest_* calls
        cached, and vice versa); an unbounded facade cache is unsafe
        for a long-lived loop, so the tuner then gets its own bounded
        cache. ``state_file`` names a JSON file written by
        ``OnlineTuner.save_state``; when it exists, the tuner resumes
        from it (templates, window, baseline, standing design) instead
        of starting cold — saving is the caller's job. ``state_store``
        does the same through a
        :class:`~repro.resilience.store.StateStore` slot ``""`` (and
        wins over ``state_file``): with the database backend, the tuner
        resumes on a host that has no local state files at all.
        ``knobs`` pass through to :class:`OnlineTuner` (``window_size``,
        ``check_interval``, ``build_cost_per_page``, ``workers``,
        ``background``, ``listener``, ``compress`` for CoPhy scale
        mode on long streams, ...).

        ``auto_apply=True`` materializes every adopted design through
        :meth:`apply_design` (journaled at ``apply_journal`` when set);
        a callable is used as the applier directly. The tuner then
        advises against a *clone* of the catalog, frozen at session
        start: advising against the live catalog after materialization
        would zero the very benefits that justified the design and
        oscillate between adopting and dropping it.
        """
        if budget_pages is None:
            if budget_bytes is None:
                raise ValueError("provide budget_bytes or budget_pages")
            budget_pages = max(1, budget_bytes // BLOCK_SIZE)
        if self._cache_bounded:
            knobs.setdefault("cost_cache", self._cost_cache)
        knobs.setdefault("fault_injector", self._fault_injector)
        auto_apply = knobs.pop("auto_apply", None)
        apply_journal = knobs.pop("apply_journal", None)
        catalog = self._db.catalog
        if auto_apply:
            if not callable(auto_apply):

                def auto_apply(design, _journal=apply_journal):
                    return self.apply_design(design, journal_path=_journal)

            knobs["auto_apply"] = auto_apply
            catalog = self._db.catalog.clone()
        tuner = OnlineTuner(
            catalog,
            self._config,
            budget_pages=budget_pages,
            **knobs,
        )
        if state_store is not None:
            if state_store.exists(""):
                tuner.restore_state_from(state_store)
        elif resilience_state.has_state(state_file):
            # load_state verifies the checksum envelope and falls back
            # to the rotated .bak when the primary is torn or missing;
            # legacy bare-dict files load unverified.
            state, _source = resilience_state.load_state(state_file)
            tuner.restore_state(state)
        return tuner

    # ------------------------------------------------------------------
    # Scenario 5: divergent-design tuning for a replicated fleet

    def fleet(
        self,
        n_replicas: int,
        budget_pages: int | None = None,
        budget_bytes: int | None = None,
        **knobs,
    ) -> "DivergentTuner":
        """A divergent-design tuner over an ``n_replicas``-wide fleet.

        Returns a :class:`~repro.fleet.tuner.DivergentTuner` whose
        replicas are forked from this database's catalog::

            fleet = parinda.fleet(n_replicas=3, budget_bytes=16 << 20)
            result = fleet.tune(workload)          # or a WorkloadMonitor
            replica_id = result.router.route(sql)

        The budget is **per replica** (hardware-identical replicas each
        get the same storage). The tuner shares this facade's cost
        cache for candidate sizing and model builds — suggest_* calls
        and fleet rounds warm each other — while each replica keeps a
        private cache for its own advisor runs (bounded like the
        facade's when ``cache_max_entries`` was set). ``knobs`` pass
        through to :class:`DivergentTuner` (``max_rounds``, ``seed``,
        ``max_share``, ``workers``, ``advisor_knobs``, ...).
        """
        from repro.fleet.tuner import DivergentTuner

        if budget_pages is None:
            if budget_bytes is None:
                raise ValueError("provide budget_bytes or budget_pages")
            budget_pages = max(1, budget_bytes // BLOCK_SIZE)
        knobs.setdefault("fault_injector", self._fault_injector)
        knobs.setdefault("cost_cache", self._cost_cache)
        if self._cache_bounded:
            knobs.setdefault("cache_max_entries", self._cache_max_entries)
        return DivergentTuner(
            self._db.catalog,
            self._config,
            n_replicas=n_replicas,
            budget_pages=budget_pages,
            **knobs,
        )

    def fleet_serve(
        self,
        n_replicas: int,
        budget_pages: int | None = None,
        budget_bytes: int | None = None,
        state_file: str | None = None,
        state_store: StateStore | None = None,
        **knobs,
    ) -> "FleetController":
        """A closed-loop serving controller over an ``n_replicas`` fleet.

        Returns a :class:`~repro.fleet.serve.FleetController` whose
        replicas are forked from this facade's database (replica 0 *is*
        this database; the rest are :meth:`Database.clone` views over
        the same rows)::

            fleet = parinda.fleet_serve(3, budget_bytes=16 << 20,
                                        state_file="fleet.state")
            for sql in statement_stream:
                fleet.observe(sql)
            print(fleet.designs(), fleet.phase)

        The controller routes every statement, watches per-replica and
        fleet-level drift, re-tunes through :class:`DivergentTuner`,
        rolls new designs out one replica at a time through journaled
        applies, re-validates each replica against its live window, and
        rolls a sustained regression back automatically. With a
        ``state_file`` the rollout is journaled so a killed process
        resumes to the same terminal fleet state; a ``state_store``
        (which wins over ``state_file``) swaps the journal's home — the
        :class:`~repro.resilience.store.DatabaseStateStore` keeps it
        inside the monitored database, surviving host loss, and a
        fenced store rejects a superseded daemon's writes with
        :class:`~repro.errors.StaleLeaseError`. The budget is **per
        replica**; ``knobs`` pass through to :class:`FleetController`
        (``window_size``, ``check_interval``, ``regression_windows``,
        ``listener``, ...).
        """
        from repro.fleet.serve import FleetController

        if budget_pages is None:
            if budget_bytes is None:
                raise ValueError("provide budget_bytes or budget_pages")
            budget_pages = max(1, budget_bytes // BLOCK_SIZE)
        knobs.setdefault("fault_injector", self._fault_injector)
        knobs.setdefault("cost_cache", self._cost_cache)
        if self._cache_bounded:
            knobs.setdefault("cache_max_entries", self._cache_max_entries)
        databases = [self._db] + [
            self._db.clone() for _ in range(n_replicas - 1)
        ]
        return FleetController(
            databases,
            self._config,
            budget_pages=budget_pages,
            state_path=state_file,
            store=state_store,
            **knobs,
        )

    # ------------------------------------------------------------------
    # Scenario 2: automatic partition suggestion

    def suggest_partitions(
        self,
        workload: Workload,
        replication_limit: float = 0.25,
        tables: list[str] | None = None,
        workers: int = 1,
    ) -> PartitionAdvisorResult:
        """Optimal vertical partitions for ``workload`` (AutoPart)."""
        advisor = AutoPartAdvisor(
            self._db.catalog,
            self._config,
            replication_limit=replication_limit,
            tables=tables,
            workers=workers,
            fault_injector=self._fault_injector,
        )
        return advisor.recommend(workload)

    def create_partitions(self, result: PartitionAdvisorResult) -> list[str]:
        """Physically create suggested partitions ("create on disk"
        option of the demo GUI); returns the fragment table names."""
        created = []
        for scheme in result.schemes.values():
            for relation in self._db.materialize_partitions(scheme):
                created.append(relation.name)
        return created

    # ------------------------------------------------------------------
    # Scenario 3: automatic index suggestion

    def suggest_indexes(
        self,
        workload: Workload,
        budget_bytes: int | None = None,
        budget_pages: int | None = None,
        backend: str = "builtin",
        single_column_only: bool = False,
        workers: int = 1,
        parallel_mode: str = "auto",
        compress: bool = False,
    ) -> AdvisorResult:
        """Optimal index set within a storage budget (INUM + ILP).

        ``workers=N`` fans per-query INUM model construction out over a
        pool; the recommendation is bit-identical to ``workers=1``.

        ``compress=True`` enables CoPhy scale mode: the workload is
        folded onto canonical templates before advising (10k raw
        statements collapse to their few dozen shapes) and the ILP runs
        with dominance and bound pruning. Advising a raw stream and its
        pre-compressed equivalent then produce bit-identical results.
        """
        if budget_pages is None:
            if budget_bytes is None:
                raise ValueError("provide budget_bytes or budget_pages")
            budget_pages = max(1, budget_bytes // BLOCK_SIZE)
        advisor = IlpIndexAdvisor(
            self._db.catalog,
            self._config,
            backend=backend,
            single_column_only=single_column_only,
            workers=workers,
            parallel_mode=parallel_mode,
            cost_cache=self._cost_cache,
            fault_injector=self._fault_injector,
            compress=compress,
        )
        return advisor.recommend(workload, budget_pages)

    def suggest_indexes_greedy(
        self, workload: Workload, budget_pages: int, **kwargs
    ) -> AdvisorResult:
        """The greedy baseline, for comparisons (experiment E6)."""
        kwargs.setdefault("fault_injector", self._fault_injector)
        advisor = GreedyIndexAdvisor(self._db.catalog, self._config, **kwargs)
        return advisor.recommend(workload, budget_pages)

    def create_indexes(self, result: AdvisorResult) -> list[str]:
        """Physically build the suggested indexes; returns their names.

        Idempotent: an index whose signature (table + ordered columns)
        is already materialized is skipped and its existing name
        returned, and a name collision with a *different* index gets a
        numeric suffix — so a second call (or a call after an earlier
        advisor run) never collides. Names are derived from the
        signature via :func:`~repro.resilience.apply.materialized_name`
        rather than the per-run candidate counter, so re-runs target
        stable names.
        """
        created = []
        for index in result.indexes:
            sig = index_signature(index)
            existing = next(
                (
                    ix.name
                    for ix in self._db.catalog.indexes_on(index.table_name)
                    if index_signature(ix) == sig and self._db.has_btree(ix.name)
                ),
                None,
            )
            if existing is not None:
                created.append(existing)
                continue
            name = materialized_name(index, taken=self._db.catalog.index_names)
            self._db.create_index(
                index.as_real(name=name), fault_injector=self._fault_injector
            )
            created.append(name)
        return created

    # ------------------------------------------------------------------
    # Crash-safe materialization (tune --apply)

    def apply_design(
        self,
        result: "AdvisorResult | Sequence[Index]",
        *,
        workload: Workload | None = None,
        dry_run: bool = False,
        validate: bool = False,
        journal_path: str | None = None,
        store: StateStore | None = None,
        journal_key: str = "apply",
        retry_steps: bool = True,
    ) -> ApplyReport:
        """Materialize an advised design through the journaled executor.

        Unlike :meth:`create_indexes`, this computes a full
        :class:`~repro.resilience.apply.DesignDelta` — standing managed
        indexes absent from ``result`` are *dropped* — and, when
        ``journal_path`` is set, every step is preceded by a
        checksummed intent-journal write so a killed process resumes
        (re-run the same call) or rolls back (:meth:`rollback_design`)
        cleanly. A ``store`` (which wins over ``journal_path``) puts
        the journal in a pluggable
        :class:`~repro.resilience.store.StateStore` slot
        ``journal_key`` instead — with the database backend the intent
        journal survives host loss, not just process loss.

        ``result`` is an :class:`AdvisorResult` or a plain index
        sequence. ``dry_run`` reports the delta without touching
        anything. ``validate`` re-plans each query of ``workload``
        (required then) against the materialized catalog and fills
        ``report.validation`` with simulated-vs-materialized cost
        entries; simulated costs come from ``result.per_query`` when
        ``result`` is an :class:`AdvisorResult`.
        """
        indexes = (
            result.indexes if isinstance(result, AdvisorResult) else tuple(result)
        )
        executor = ApplyExecutor(
            self._db,
            journal_path=None if store is not None else journal_path,
            store=store,
            journal_key=journal_key,
            fault_injector=self._fault_injector,
        )
        report = executor.apply(
            indexes, dry_run=dry_run, retry_steps=retry_steps
        )
        if validate and not dry_run:
            if workload is None:
                raise ValueError("validate=True needs a workload")
            simulated: dict[str, float] = {}
            if isinstance(result, AdvisorResult):
                simulated = {qb.name: qb.cost_after for qb in result.per_query}
            for query in workload:
                key = (self._db.catalog.cache_key, query.name)
                cost = self._plan_cost_cache.get(key)
                if cost is None:
                    bound = self._cost_cache.bound_query(
                        self._db.catalog, query.sql
                    )
                    cost = self._planner.plan(bound).total_cost
                    self._plan_cost_cache[key] = cost
                # Weighted like AdvisorResult.per_query, so the two
                # columns are comparable when the workload's weights
                # have not moved since the advise.
                report.validation.append(
                    ValidationEntry(
                        name=query.name,
                        simulated=simulated.get(query.name),
                        materialized=cost * query.weight,
                    )
                )
        return report

    def rollback_design(
        self,
        journal_path: str | None = None,
        *,
        store: StateStore | None = None,
        journal_key: str = "apply",
    ) -> ApplyReport:
        """Restore the pre-apply design recorded in the apply journal."""
        executor = ApplyExecutor(
            self._db,
            journal_path=None if store is not None else journal_path,
            store=store,
            journal_key=journal_key,
            fault_injector=self._fault_injector,
        )
        return executor.rollback()

    # ------------------------------------------------------------------
    # Combined pipeline: PARtitions, then INDexes on the fragments

    def suggest_combined(
        self,
        workload: Workload,
        budget_pages: int,
        replication_limit: float = 0.25,
    ) -> "CombinedResult":
        """Partitions first, then indexes over the partitioned design.

        The tool's full pipeline: run AutoPart, rewrite the workload onto
        the suggested fragments, and let the ILP index advisor work
        against the partitioned what-if catalog — indexes then land on
        the narrow fragment tables, compounding both benefits.
        """
        partitions = self.suggest_partitions(
            workload, replication_limit=replication_limit
        )
        if not partitions.schemes:
            indexes = self.suggest_indexes(workload, budget_pages=budget_pages)
            return CombinedResult(
                partitions=partitions,
                indexes=indexes,
                cost_before=partitions.cost_before,
                cost_after=indexes.cost_after,
            )

        # Register fragment shells in a private what-if catalog and move
        # the workload onto them.
        from repro.whatif.session import WhatIfSession

        session = WhatIfSession(self._db.catalog, self._config)
        for scheme in partitions.schemes.values():
            for position, fragment in enumerate(scheme.fragments):
                session.add_partition_table(
                    scheme.table_name, fragment, scheme.fragment_name(position)
                )
        rewritten = Workload(
            queries=[
                Query(name=name, sql=sql, weight=workload.query(name).weight)
                for name, sql in partitions.rewritten_sql.items()
            ],
            name=f"{workload.name}-partitioned",
        )
        advisor = IlpIndexAdvisor(
            session.catalog, self._config, fault_injector=self._fault_injector
        )
        indexes = advisor.recommend(rewritten, budget_pages=budget_pages)
        return CombinedResult(
            partitions=partitions,
            indexes=indexes,
            cost_before=partitions.cost_before,
            cost_after=indexes.cost_after,
        )

    # ------------------------------------------------------------------

    def workload_cost(self, workload: Workload) -> float:
        """Optimizer cost of the workload under the current design.

        Reuses one planner across calls; bindings and per-query plan
        costs are cached per catalog version, so repeated evaluations
        (e.g. pricing a design after each ``create_index``) replan only
        what the catalog change invalidated.
        """
        total = 0.0
        for query in workload:
            key = (self._db.catalog.cache_key, query.name)
            cost = self._plan_cost_cache.get(key)
            if cost is None:
                bound = self._cost_cache.bound_query(self._db.catalog, query.sql)
                cost = self._planner.plan(bound).total_cost
                self._plan_cost_cache[key] = cost
            total += cost * query.weight
        return total

"""PARINDA core: the tool's three user-facing components (Figure 1).

* :class:`InteractiveDesigner` — the interactive partitioning/indexing
  component: the DBA supplies what-if indexes and partitions, and gets
  the average workload benefit, per-query benefits, rewritten queries,
  and simulated-vs-materialized plan comparisons.
* Automatic index suggestion — :class:`~repro.advisor.IlpIndexAdvisor`,
  re-exported here.
* Automatic partition suggestion —
  :class:`~repro.partitioning.AutoPartAdvisor`, re-exported here.
* :class:`Parinda` — one object bundling all three over a database.
"""

from repro.advisor.ilp_advisor import AdvisorResult, IlpIndexAdvisor, QueryBenefit
from repro.core.interactive import DesignEvaluation, InteractiveDesigner
from repro.core.parinda import CombinedResult, Parinda
from repro.partitioning.autopart import AutoPartAdvisor, PartitionAdvisorResult

__all__ = [
    "AdvisorResult",
    "AutoPartAdvisor",
    "CombinedResult",
    "DesignEvaluation",
    "IlpIndexAdvisor",
    "InteractiveDesigner",
    "Parinda",
    "PartitionAdvisorResult",
    "QueryBenefit",
]

"""The interactive partitioning/indexing component (demo scenario 1).

"The user inputs the query workload file and the original physical
design. Then, she creates several what-if table partitions and several
what-if indexes ... The workload is evaluated for the new physical
design. The average workload benefit and the individual queries'
benefits are displayed." This module is that component, minus the GUI:
a programmatic API producing the same numbers plus the plan-comparison
check that validates simulation accuracy against materialized designs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.advisor.ilp_advisor import QueryBenefit
from repro.catalog.schema import Index, PartitionScheme
from repro.errors import WhatIfError
from repro.optimizer.explain import explain
from repro.optimizer.planner import Planner
from repro.optimizer.plans import Plan, plan_signature
from repro.partitioning.fragments import fragment_with_pk
from repro.partitioning.rewrite import PartitionRewriter
from repro.sql.binder import bind
from repro.sql.printer import to_sql
from repro.storage.database import Database
from repro.whatif.session import WhatIfSession
from repro.workloads.workload import Workload


@dataclass
class DesignEvaluation:
    """What the interactive GUI displays for one evaluated design."""

    cost_before: float
    cost_after: float
    per_query: list[QueryBenefit]
    rewritten_sql: dict[str, str] = field(default_factory=dict)

    @property
    def average_benefit(self) -> float:
        """Average per-query relative benefit (the GUI's headline number)."""
        if not self.per_query:
            return 0.0
        total = 0.0
        for entry in self.per_query:
            if entry.cost_before > 0:
                total += (entry.cost_before - entry.cost_after) / entry.cost_before
        return total / len(self.per_query)

    @property
    def speedup(self) -> float:
        if self.cost_after <= 0:
            return float("inf")
        return self.cost_before / self.cost_after


@dataclass
class PlanComparison:
    """Simulated vs. materialized plan for one query (accuracy check)."""

    query_name: str
    whatif_cost: float
    materialized_cost: float
    plans_match: bool
    whatif_plan: str
    materialized_plan: str

    @property
    def cost_error(self) -> float:
        if self.materialized_cost == 0:
            return 0.0
        return abs(self.whatif_cost - self.materialized_cost) / self.materialized_cost


class InteractiveDesigner:
    """Manual what-if exploration over a database."""

    def __init__(self, database: Database) -> None:
        self._db = database
        self._session = WhatIfSession(database.catalog)
        self._schemes: dict[str, PartitionScheme] = {}
        # Baseline plans depend only on the real catalog; target-side
        # bindings depend on the session catalog. Both are keyed by the
        # owning catalog's version so they never serve stale state, and
        # the session's own fingerprinted plan cache does the rest —
        # evaluate() after add_whatif_index replans only the queries
        # that touch the indexed table.
        self._baseline_plans: dict[tuple, Plan] = {}
        self._bound_targets: dict[tuple, tuple] = {}

    @property
    def session(self) -> WhatIfSession:
        return self._session

    def reset(self) -> None:
        """Drop every what-if feature created so far."""
        self._session = WhatIfSession(self._db.catalog)
        self._schemes = {}
        self._baseline_plans = {}
        self._bound_targets = {}

    # ------------------------------------------------------------------
    # Design features

    def add_whatif_index(
        self, table: str, columns: tuple[str, ...] | list[str], name: str | None = None
    ) -> Index:
        return self._session.add_index(table, columns, name=name)

    def add_whatif_partitions(
        self, table: str, fragments: list[tuple[str, ...]]
    ) -> PartitionScheme:
        """Simulate a full vertical partitioning of ``table``.

        ``fragments`` lists logical column groups; primary-key columns
        are added to each fragment automatically. Every table column
        must appear in some fragment.
        """
        if table in self._schemes:
            raise WhatIfError(f"table {table!r} already has what-if partitions")
        table_obj = self._db.catalog.table(table)
        covered = set(table_obj.primary_key)
        for fragment in fragments:
            covered |= set(fragment)
        missing = set(table_obj.column_names) - covered
        if missing:
            raise WhatIfError(
                f"partitioning of {table!r} leaves columns uncovered: "
                f"{sorted(missing)}"
            )
        physical = tuple(
            fragment_with_pk(table_obj, tuple(f)) for f in fragments
        )
        scheme = PartitionScheme(table_name=table, fragments=physical)
        for position in range(len(physical)):
            self._session.add_partition_table(
                table, physical[position], scheme.fragment_name(position)
            )
        self._schemes[table] = scheme
        return scheme

    # ------------------------------------------------------------------
    # Evaluation

    def evaluate(self, workload: Workload) -> DesignEvaluation:
        """Benefit of the current what-if design over the original."""
        baseline = Planner(self._db.catalog)
        rewriter = PartitionRewriter(self._schemes) if self._schemes else None

        per_query: list[QueryBenefit] = []
        rewritten_sql: dict[str, str] = {}
        cost_before = 0.0
        cost_after = 0.0
        for query in workload:
            base_key = (self._db.catalog.cache_key, query.name)
            base_plan = self._baseline_plans.get(base_key)
            if base_plan is None:
                bound = query.bind(self._db.catalog)
                base_plan = baseline.plan(bound)
                self._baseline_plans[base_key] = base_plan
            before = base_plan.total_cost * query.weight
            # Partition-scheme changes add shell tables to the session
            # catalog (version bump), so the catalog key covers them.
            target_key = (self._session.catalog.cache_key, query.name)
            entry = self._bound_targets.get(target_key)
            if entry is None:
                bound = query.bind(self._db.catalog)
                if rewriter is not None:
                    rewritten = rewriter.rewrite(bound)
                    sql = to_sql(rewritten)
                    target = bind(self._session.catalog, rewritten)
                else:
                    sql = query.sql.strip()
                    target = bind(self._session.catalog, query.parse())
                entry = (target, sql)
                self._bound_targets[target_key] = entry
            target, rewritten_sql[query.name] = entry
            plan = self._session.plan(target)
            after = plan.total_cost * query.weight
            used = sorted(
                {
                    name
                    for name in _hypothetical_indexes_in(plan)
                }
            )
            cost_before += before
            cost_after += after
            per_query.append(
                QueryBenefit(
                    name=query.name,
                    cost_before=before,
                    cost_after=after,
                    indexes_used=used,
                )
            )
        return DesignEvaluation(
            cost_before=cost_before,
            cost_after=cost_after,
            per_query=per_query,
            rewritten_sql=rewritten_sql,
        )

    def compare_with_materialized(self, query_name: str, workload: Workload) -> PlanComparison:
        """Materialize the current what-if indexes for real and compare
        plans — the demo's "verify the accuracy of the physical design
        simulation" option.

        Builds real B-Trees (and fragment tables) in a scratch copy of
        the database, plans the query there, and checks the plan shape
        and cost against the what-if plan.
        """
        query = workload.query(query_name)
        scratch = _materialize(self._db, self._session, self._schemes)

        # What-if side.
        bound_whatif = bind(self._session.catalog, query.parse())
        whatif_plan = self._session.planner().plan(bound_whatif)

        # Materialized side.
        bound_real = bind(scratch.catalog, query.parse())
        real_plan = Planner(scratch.catalog).plan(bound_real)

        return PlanComparison(
            query_name=query_name,
            whatif_cost=whatif_plan.total_cost,
            materialized_cost=real_plan.total_cost,
            plans_match=_signatures_match(whatif_plan, real_plan),
            whatif_plan=explain(whatif_plan),
            materialized_plan=explain(real_plan),
        )


def _hypothetical_indexes_in(plan: Plan) -> list[str]:
    from repro.optimizer.plans import IndexScan

    return [
        node.index_name
        for node in plan.walk()
        if isinstance(node, IndexScan) and node.hypothetical
    ]


def _signatures_match(whatif_plan: Plan, real_plan: Plan) -> bool:
    """Plan shapes are equal up to index naming (what-if names differ)."""

    def normalize(sig):
        if isinstance(sig, tuple):
            return tuple(normalize(part) for part in sig)
        return sig

    return normalize(_strip_names(plan_signature(whatif_plan))) == normalize(
        _strip_names(plan_signature(real_plan))
    )


def _strip_names(signature):
    return signature


def _materialize(
    db: Database, session: WhatIfSession, schemes: dict[str, PartitionScheme]
) -> Database:
    """A scratch database with the session's design built for real."""
    scratch = Database()
    for table_name in db.table_names:
        relation = db.relation(table_name)
        scratch.create_table(relation.table, relation.heap.columns_dict())
    for index in db.catalog.indexes():
        if not index.hypothetical and scratch.has_relation(index.table_name):
            scratch.create_index(index)
    for position, index in enumerate(session.hypothetical_indexes):
        scratch.create_index(index.as_real(name=f"mat_{position}_{index.name}"))
    for scheme in schemes.values():
        scratch.materialize_partitions(scheme)
    return scratch

"""Linear program modeling layer.

Callers (the index advisor, tests, benchmarks) build programs with named
variables and constraints; the model compiles itself into dense numpy
arrays for the simplex engine. All variables are non-negative with an
optional upper bound; binary variables are ``0 <= x <= 1`` integers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError


class Sense(enum.Enum):
    LE = "<="
    GE = ">="
    EQ = "="


@dataclass(frozen=True)
class Variable:
    """One decision variable."""

    name: str
    index: int
    is_integer: bool = False
    upper_bound: float | None = None


@dataclass
class Constraint:
    """``sum(coeff * var) sense rhs``."""

    name: str
    coefficients: dict[int, float]
    sense: Sense
    rhs: float


@dataclass
class CompiledProgram:
    """Dense standard-ish form: maximize c @ x, A_ub x <= b_ub, A_eq x = b_eq,
    0 <= x <= ub."""

    objective: np.ndarray
    a_ub: np.ndarray
    b_ub: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    upper_bounds: np.ndarray
    integer_mask: np.ndarray


class LinearProgram:
    """A maximization program over non-negative variables."""

    def __init__(self, name: str = "lp") -> None:
        self.name = name
        self._variables: list[Variable] = []
        self._by_name: dict[str, Variable] = {}
        self._constraints: list[Constraint] = []
        self._objective: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Building

    def add_variable(
        self,
        name: str,
        is_integer: bool = False,
        upper_bound: float | None = None,
        objective: float = 0.0,
    ) -> Variable:
        if name in self._by_name:
            raise SolverError(f"duplicate variable name {name!r}")
        var = Variable(
            name=name,
            index=len(self._variables),
            is_integer=is_integer,
            upper_bound=upper_bound,
        )
        self._variables.append(var)
        self._by_name[name] = var
        if objective:
            self._objective[var.index] = objective
        return var

    def add_binary(self, name: str, objective: float = 0.0) -> Variable:
        return self.add_variable(
            name, is_integer=True, upper_bound=1.0, objective=objective
        )

    def set_objective(self, coefficients: dict[Variable, float]) -> None:
        self._objective = {var.index: c for var, c in coefficients.items()}

    def add_constraint(
        self,
        coefficients: dict[Variable, float],
        sense: Sense,
        rhs: float,
        name: str | None = None,
    ) -> Constraint:
        constraint = Constraint(
            name=name or f"c{len(self._constraints)}",
            coefficients={var.index: c for var, c in coefficients.items() if c != 0.0},
            sense=sense,
            rhs=rhs,
        )
        self._constraints.append(constraint)
        return constraint

    def add_exclusive(
        self, variables: list[Variable], name: str | None = None
    ) -> Constraint:
        """At most one of ``variables`` may be active: ``sum(vars) <= 1``.

        The advisor's per-(query, table) atomic-configuration rows — a
        query uses at most one access path per table — all have this
        shape; emitting them through one helper keeps the row layout
        identical across advisor modes.
        """
        return self.add_constraint(
            {var: 1.0 for var in variables}, Sense.LE, 1.0, name=name
        )

    # ------------------------------------------------------------------
    # Introspection

    @property
    def variables(self) -> list[Variable]:
        return list(self._variables)

    @property
    def constraints(self) -> list[Constraint]:
        return list(self._constraints)

    def variable(self, name: str) -> Variable:
        try:
            return self._by_name[name]
        except KeyError:
            raise SolverError(f"no variable named {name!r}") from None

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    @property
    def nnz(self) -> int:
        """Structural non-zeros across all constraint rows."""
        return sum(len(c.coefficients) for c in self._constraints)

    def density(self) -> float:
        """Fraction of the constraint matrix that is non-zero.

        Scale diagnostics: the advisor's aggregated-coupling mode exists
        to keep this (and the row count) from growing with the product
        of queries and candidates.
        """
        cells = len(self._constraints) * len(self._variables)
        if cells == 0:
            return 0.0
        return self.nnz / cells

    def objective_value(self, solution: np.ndarray) -> float:
        return float(
            sum(coeff * solution[idx] for idx, coeff in self._objective.items())
        )

    # ------------------------------------------------------------------
    # Compilation

    def compile(self) -> CompiledProgram:
        n = len(self._variables)
        if n == 0:
            raise SolverError("program has no variables")
        objective = np.zeros(n)
        for idx, coeff in self._objective.items():
            objective[idx] = coeff

        ub_rows: list[np.ndarray] = []
        ub_rhs: list[float] = []
        eq_rows: list[np.ndarray] = []
        eq_rhs: list[float] = []
        for constraint in self._constraints:
            row = np.zeros(n)
            for idx, coeff in constraint.coefficients.items():
                row[idx] = coeff
            if constraint.sense is Sense.LE:
                ub_rows.append(row)
                ub_rhs.append(constraint.rhs)
            elif constraint.sense is Sense.GE:
                ub_rows.append(-row)
                ub_rhs.append(-constraint.rhs)
            else:
                eq_rows.append(row)
                eq_rhs.append(constraint.rhs)

        upper_bounds = np.full(n, np.inf)
        for var in self._variables:
            if var.upper_bound is not None:
                upper_bounds[var.index] = var.upper_bound

        integer_mask = np.array([v.is_integer for v in self._variables], dtype=bool)
        return CompiledProgram(
            objective=objective,
            a_ub=np.array(ub_rows) if ub_rows else np.zeros((0, n)),
            b_ub=np.array(ub_rhs) if ub_rhs else np.zeros(0),
            a_eq=np.array(eq_rows) if eq_rows else np.zeros((0, n)),
            b_eq=np.array(eq_rhs) if eq_rhs else np.zeros(0),
            upper_bounds=upper_bounds,
            integer_mask=integer_mask,
        )

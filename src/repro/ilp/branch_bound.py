"""Best-first branch-and-bound over the simplex LP relaxation.

Nodes are subproblems with some integer variables fixed; the priority
queue explores the best LP bound first, an LP-rounding heuristic seeds
the incumbent, and subtrees whose bound cannot beat the incumbent are
pruned. Exact for the binary programs the index advisor emits.
An optional ``scipy`` backend (HiGHS via ``scipy.optimize.milp``) can be
selected for cross-validation.

Bounded-time harness: the solver is built to come back with its best
integer incumbent rather than an opaque error whenever the search is
cut short — by the node limit, by a per-solve ``deadline_seconds``, or
by the simplex iteration limit inside a node (the LP's feasible point
then seeds the rounding heuristic). Only when *no* incumbent exists
does a cut-short solve raise :class:`~repro.errors.SolverError`, and
the message says exactly which limit hit. The ``solver.iterate`` fault
point fires once per node expansion.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError
from repro.ilp.model import CompiledProgram, LinearProgram
from repro.ilp.simplex import SimplexSolver, check_feasible, fix_variables
from repro.ilp.solution import MilpSolution
from repro.resilience import faults
from repro.resilience.faults import FaultInjector

_INT_TOL = 1e-6


@dataclass(order=True)
class _Node:
    priority: float  # negative LP bound (heapq pops smallest)
    sequence: int
    fixed: dict[int, float] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.fixed is None:
            self.fixed = {}


class BranchAndBoundSolver:
    """Exact MILP solver for maximization programs with binary integers."""

    def __init__(
        self,
        max_nodes: int = 50000,
        gap_tolerance: float = 1e-6,
        backend: str = "builtin",
        deadline_seconds: float | None = None,
        fault_injector: FaultInjector | None = None,
        bound_epsilon: float = 0.0,
    ) -> None:
        """``bound_epsilon`` is the CoPhy-style relative fathoming slack:
        a node whose LP-relaxation bound cannot beat the incumbent by
        more than ``bound_epsilon × |incumbent|`` is pruned without
        branching. ``0.0`` (default) keeps the solve exact up to
        ``gap_tolerance``; the scale-mode advisor passes a small
        positive epsilon to trade a bounded sliver of objective for a
        much smaller search tree on large workloads.
        """
        if backend not in ("builtin", "scipy"):
            raise SolverError(f"unknown MILP backend {backend!r}")
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise SolverError("deadline_seconds must be positive")
        if bound_epsilon < 0:
            raise SolverError("bound_epsilon must be non-negative")
        self._max_nodes = max_nodes
        self._gap_tolerance = gap_tolerance
        self._backend = backend
        self._deadline = deadline_seconds
        self._faults = fault_injector
        self._bound_epsilon = bound_epsilon
        self._simplex = SimplexSolver()

    def _fathom_threshold(self, best_objective: float) -> float:
        """Bound below which a node cannot usefully improve the incumbent."""
        slack = self._gap_tolerance
        if self._bound_epsilon and math.isfinite(best_objective):
            slack = max(slack, self._bound_epsilon * abs(best_objective))
        return best_objective + slack

    # ------------------------------------------------------------------

    def solve(self, program: LinearProgram) -> MilpSolution:
        compiled = program.compile()
        if self._backend == "scipy":
            return self._solve_scipy(program, compiled)
        return self._solve_builtin(program, compiled)

    # ------------------------------------------------------------------

    def _solve_builtin(
        self, program: LinearProgram, compiled: CompiledProgram
    ) -> MilpSolution:
        counter = itertools.count()
        root = _Node(priority=-math.inf, sequence=next(counter), fixed={})
        heap: list[_Node] = [root]

        best_x: np.ndarray | None = None
        best_objective = -math.inf
        best_bound = math.inf
        nodes = 0
        limited = 0
        deadline_hit = False
        started = time.monotonic()
        stop = None
        if self._deadline is not None:
            deadline_at = started + self._deadline
            stop = lambda: time.monotonic() > deadline_at  # noqa: E731

        while heap and nodes < self._max_nodes:
            if stop is not None and stop():
                deadline_hit = True
                break
            node = heapq.heappop(heap)
            node_bound = -node.priority
            if node_bound <= self._fathom_threshold(best_objective):
                continue  # cannot improve
            nodes += 1
            faults.check("solver.iterate", f"node {nodes}", self._faults)

            reduced, offset, keep = fix_variables(compiled, node.fixed)
            # Only thread the stop callable when a deadline is armed, so
            # injected simplex doubles with the plain signature keep
            # working.
            if stop is None:
                result = self._simplex.solve(reduced)
            else:
                result = self._simplex.solve(reduced, stop=stop)
            if result.status == "deadline":
                # The deadline fired mid-LP. A phase-2 cut still yields
                # a feasible relaxation point — salvage an incumbent
                # from it before stopping, exactly like iteration_limit.
                deadline_hit = True
                if result.x is not None:
                    x_full = self._expand(compiled, node.fixed, keep, result.x)
                    rounded = self._round_heuristic(compiled, x_full)
                    if rounded is not None:
                        value = float(compiled.objective @ rounded)
                        if value > best_objective:
                            best_objective = value
                            best_x = rounded
                break
            if result.status == "infeasible":
                continue
            if result.status == "unbounded":
                return MilpSolution(
                    status="infeasible" if node.fixed else "node_limit",
                    objective=None,
                    nodes_explored=nodes,
                )
            if result.status == "iteration_limit":
                # The LP was cut short but its basis is still feasible:
                # try to salvage an incumbent from it rather than
                # discarding the node outright. Its objective is not a
                # valid upper bound, so we never branch or prune on it.
                limited += 1
                if result.x is not None:
                    x_full = self._expand(compiled, node.fixed, keep, result.x)
                    rounded = self._round_heuristic(compiled, x_full)
                    if rounded is not None:
                        value = float(compiled.objective @ rounded)
                        if value > best_objective:
                            best_objective = value
                            best_x = rounded
                continue
            if not result.is_optimal:
                continue
            bound = offset + (result.objective or 0.0)
            if nodes == 1:
                best_bound = bound
            if bound <= self._fathom_threshold(best_objective):
                continue

            x_full = self._expand(compiled, node.fixed, keep, result.x)
            fractional = self._most_fractional(compiled, x_full, node.fixed)
            if fractional is None:
                # Integral: new incumbent.
                if bound > best_objective:
                    best_objective = bound
                    best_x = x_full
                continue

            # Rounding heuristic to tighten the incumbent early.
            rounded = self._round_heuristic(compiled, x_full)
            if rounded is not None:
                value = float(compiled.objective @ rounded)
                if value > best_objective:
                    best_objective = value
                    best_x = rounded

            for branch_value in (1.0, 0.0):
                child_fixed = dict(node.fixed)
                child_fixed[fractional] = branch_value
                heapq.heappush(
                    heap,
                    _Node(
                        priority=-bound,
                        sequence=next(counter),
                        fixed=child_fixed,
                    ),
                )

        if best_x is None:
            if limited:
                raise SolverError(
                    f"simplex iteration limit hit in {limited} node(s) and no "
                    "integer incumbent was found; raise max_iterations or use "
                    "the greedy fallback"
                )
            if deadline_hit:
                raise SolverError(
                    f"solver deadline ({self._deadline:.3g}s) expired after "
                    f"{nodes} nodes with no integer incumbent"
                )
            status = "infeasible" if not heap else "node_limit"
            return MilpSolution(status=status, objective=None, nodes_explored=nodes)
        # Any cut-short search (node limit with work left, deadline, or a
        # simplex iteration limit inside any node) forfeits the
        # optimality proof: the incumbent is returned as "feasible".
        cut_short = (
            (bool(heap) and nodes >= self._max_nodes)
            or limited > 0
            or deadline_hit
        )
        status = "feasible" if cut_short else "optimal"
        gap = max(0.0, best_bound - best_objective)
        return MilpSolution(
            status=status,
            objective=best_objective,
            values={
                var.name: float(best_x[var.index]) for var in program.variables
            },
            nodes_explored=nodes,
            gap=gap,
        )

    @staticmethod
    def _expand(
        compiled: CompiledProgram,
        fixed: dict[int, float],
        keep: list[int],
        reduced_x: np.ndarray | None,
    ) -> np.ndarray:
        n = compiled.objective.shape[0]
        x = np.zeros(n)
        for idx, value in fixed.items():
            x[idx] = value
        if reduced_x is not None:
            for position, idx in enumerate(keep):
                x[idx] = reduced_x[position]
        return x

    @staticmethod
    def _most_fractional(
        compiled: CompiledProgram, x: np.ndarray, fixed: dict[int, float]
    ) -> int | None:
        best_idx: int | None = None
        best_dist = _INT_TOL
        for idx in np.where(compiled.integer_mask)[0]:
            if int(idx) in fixed:
                continue
            frac = abs(x[idx] - round(x[idx]))
            if frac > best_dist:
                best_dist = frac
                best_idx = int(idx)
        return best_idx

    @staticmethod
    def _round_heuristic(
        compiled: CompiledProgram, x: np.ndarray
    ) -> np.ndarray | None:
        rounded = x.copy()
        mask = compiled.integer_mask
        rounded[mask] = np.round(rounded[mask])
        if check_feasible(compiled, rounded):
            return rounded
        # Try rounding fractionals down (safe for <=-dominated programs).
        floored = x.copy()
        floored[mask] = np.floor(floored[mask] + _INT_TOL)
        if check_feasible(compiled, floored):
            return floored
        return None

    # ------------------------------------------------------------------

    def _solve_scipy(
        self, program: LinearProgram, compiled: CompiledProgram
    ) -> MilpSolution:
        try:
            from scipy.optimize import LinearConstraint, milp
        except ImportError as exc:  # pragma: no cover - scipy is installed here
            raise SolverError("scipy backend requested but scipy missing") from exc

        n = compiled.objective.shape[0]
        constraints = []
        if compiled.a_ub.size:
            constraints.append(
                LinearConstraint(compiled.a_ub, -np.inf, compiled.b_ub)
            )
        if compiled.a_eq.size:
            constraints.append(
                LinearConstraint(compiled.a_eq, compiled.b_eq, compiled.b_eq)
            )
        from scipy.optimize import Bounds

        ub = np.where(np.isfinite(compiled.upper_bounds), compiled.upper_bounds, np.inf)
        result = milp(
            c=-compiled.objective,  # scipy minimizes
            constraints=constraints,
            integrality=compiled.integer_mask.astype(int),
            bounds=Bounds(np.zeros(n), ub),
        )
        if not result.success:
            return MilpSolution(status="infeasible", objective=None)
        return MilpSolution(
            status="optimal",
            objective=float(-result.fun),
            values={
                var.name: float(result.x[var.index]) for var in program.variables
            },
            nodes_explored=0,
        )


def solve_milp(
    program: LinearProgram, backend: str = "builtin", max_nodes: int = 50000
) -> MilpSolution:
    """Convenience wrapper: solve ``program`` and return its solution."""
    return BranchAndBoundSolver(max_nodes=max_nodes, backend=backend).solve(program)

"""Dense two-phase tableau simplex.

Solves ``maximize c @ x`` subject to ``A_ub x <= b_ub``, ``A_eq x = b_eq``,
``0 <= x <= ub`` — the LP relaxations the branch-and-bound solver needs.
Phase 1 drives artificial variables out of the basis; phase 2 optimizes
the real objective with Dantzig pricing, switching to Bland's rule when
degeneracy stalls progress (anti-cycling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.ilp.model import CompiledProgram

_TOL = 1e-9


@dataclass
class SimplexResult:
    """Outcome of one LP solve.

    On ``iteration_limit`` (or a ``deadline`` stop) in phase 2 the
    tableau still holds a *feasible* (just not proven-optimal) basic
    solution, so ``x`` and ``objective`` are populated — branch and
    bound uses them to seed a rounding heuristic instead of abandoning
    the node empty-handed. A phase-1 cut yields no feasible point and
    leaves ``x`` None.
    """

    # "optimal" | "infeasible" | "unbounded" | "iteration_limit" | "deadline"
    status: str
    x: np.ndarray | None
    objective: float | None

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"


def fix_variables(
    program: CompiledProgram, fixed: dict[int, float]
) -> tuple[CompiledProgram, float, list[int]]:
    """Substitute fixed variables out of ``program``.

    Returns (reduced program, objective offset, kept-column indices).
    Used by branch and bound: fixing a binary to 0/1 shrinks the LP.
    """
    n = program.objective.shape[0]
    keep = [j for j in range(n) if j not in fixed]
    fixed_vec = np.zeros(n)
    for j, value in fixed.items():
        fixed_vec[j] = value

    offset = float(program.objective @ fixed_vec)
    b_ub = program.b_ub - (program.a_ub @ fixed_vec if program.a_ub.size else 0.0)
    b_eq = program.b_eq - (program.a_eq @ fixed_vec if program.a_eq.size else 0.0)

    reduced = CompiledProgram(
        objective=program.objective[keep],
        a_ub=program.a_ub[:, keep] if program.a_ub.size else np.zeros((0, len(keep))),
        b_ub=np.asarray(b_ub, dtype=float).reshape(-1),
        a_eq=program.a_eq[:, keep] if program.a_eq.size else np.zeros((0, len(keep))),
        b_eq=np.asarray(b_eq, dtype=float).reshape(-1),
        upper_bounds=program.upper_bounds[keep],
        integer_mask=program.integer_mask[keep],
    )
    return reduced, offset, keep


class SimplexSolver:
    """Two-phase dense simplex for maximization problems."""

    def __init__(self, max_iterations: int = 50000, tol: float = _TOL) -> None:
        self._max_iterations = max_iterations
        self._tol = tol

    def solve(
        self,
        program: CompiledProgram,
        stop: "Callable[[], bool] | None" = None,
    ) -> SimplexResult:
        """Solve ``program``; ``stop`` is polled once per pivot.

        When ``stop()`` returns True the solve is abandoned with status
        ``"deadline"``: mid-phase-2 that still yields a feasible point
        (like ``iteration_limit``), mid-phase-1 it yields none. Branch
        and bound threads its wall-clock deadline through here so one
        long LP cannot overrun the solver deadline unboundedly.
        """
        a_rows, b_rhs, n = self._standardize(program)
        m = len(b_rhs)
        if m == 0:
            # Unconstrained over a box: maximize by setting positive-cost
            # vars to their upper bound.
            x = np.where(
                program.objective > 0,
                np.minimum(program.upper_bounds, 1e18),
                0.0,
            )
            if np.any((program.objective > self._tol) & np.isinf(program.upper_bounds)):
                return SimplexResult(status="unbounded", x=None, objective=None)
            return SimplexResult(
                status="optimal", x=x, objective=float(program.objective @ x)
            )

        total_structural = a_rows.shape[1]
        # Tableau columns: structural (incl. slacks) + artificials + rhs.
        tableau = np.zeros((m + 1, total_structural + m + 1))
        tableau[:m, :total_structural] = a_rows
        tableau[:m, total_structural : total_structural + m] = np.eye(m)
        tableau[:m, -1] = b_rhs
        basis = list(range(total_structural, total_structural + m))

        # Phase 1: minimize sum of artificials == maximize -(sum).
        cost1 = np.zeros(total_structural + m + 1)
        cost1[total_structural : total_structural + m] = -1.0
        self._set_objective_row(tableau, basis, cost1)
        status = self._iterate(
            tableau, basis, allow_columns=total_structural + m, stop=stop
        )
        if status != "optimal":
            return SimplexResult(status=status, x=None, objective=None)
        if tableau[-1, -1] < -1e-7:
            return SimplexResult(status="infeasible", x=None, objective=None)
        self._pivot_artificials_out(tableau, basis, total_structural)

        # Phase 2: real objective over structural columns only.
        cost2 = np.zeros(total_structural + m + 1)
        cost2[:total_structural] = self._structural_cost
        self._set_objective_row(tableau, basis, cost2)
        status = self._iterate(
            tableau, basis, allow_columns=total_structural, stop=stop
        )
        if status not in ("optimal", "iteration_limit", "deadline"):
            return SimplexResult(status=status, x=None, objective=None)

        # Every phase-2 basis is primal-feasible, so even a solve cut
        # off by the iteration limit yields a usable point.
        x = np.zeros(total_structural + m)
        for row, var in enumerate(basis):
            x[var] = tableau[row, -1]
        solution = x[:n]
        return SimplexResult(
            status=status,
            x=solution,
            objective=float(self._structural_cost[:n] @ solution),
        )

    # ------------------------------------------------------------------

    def _standardize(
        self, program: CompiledProgram
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Equality rows with non-negative rhs; slacks appended as columns."""
        n = program.objective.shape[0]
        rows: list[np.ndarray] = []
        rhs: list[float] = []
        slack_signs: list[int] = []  # +1 for <=, 0 for =

        a_ub, b_ub = program.a_ub, program.b_ub
        for i in range(a_ub.shape[0]):
            rows.append(a_ub[i].astype(float))
            rhs.append(float(b_ub[i]))
            slack_signs.append(1)
        # Finite upper bounds become <= rows.
        for j in range(n):
            ub = program.upper_bounds[j]
            if np.isfinite(ub):
                row = np.zeros(n)
                row[j] = 1.0
                rows.append(row)
                rhs.append(float(ub))
                slack_signs.append(1)
        a_eq, b_eq = program.a_eq, program.b_eq
        for i in range(a_eq.shape[0]):
            rows.append(a_eq[i].astype(float))
            rhs.append(float(b_eq[i]))
            slack_signs.append(0)

        m = len(rows)
        num_slacks = sum(1 for s in slack_signs if s != 0)
        full = np.zeros((m, n + num_slacks))
        slack_col = n
        for i, (row, sign) in enumerate(zip(rows, slack_signs)):
            full[i, :n] = row
            if sign:
                full[i, slack_col] = 1.0
                slack_col += 1
            if rhs[i] < 0:
                full[i] = -full[i]
                rhs[i] = -rhs[i]

        self._structural_cost = np.zeros(n + num_slacks)
        self._structural_cost[:n] = program.objective
        return full, np.array(rhs, dtype=float), n

    @staticmethod
    def _set_objective_row(
        tableau: np.ndarray, basis: list[int], cost: np.ndarray
    ) -> None:
        """Reduced-cost row for maximization: z_j - c_j in the last row."""
        m = tableau.shape[0] - 1
        tableau[-1, :] = -cost
        for row in range(m):
            coeff = cost[basis[row]]
            if coeff != 0.0:
                tableau[-1, :] += coeff * tableau[row, :]

    def _iterate(
        self,
        tableau: np.ndarray,
        basis: list[int],
        allow_columns: int,
        stop: "Callable[[], bool] | None" = None,
    ) -> str:
        m = tableau.shape[0] - 1
        stall = 0
        last_objective = tableau[-1, -1]
        for _ in range(self._max_iterations):
            if stop is not None and stop():
                return "deadline"
            reduced = tableau[-1, :allow_columns]
            use_bland = stall > 2 * m + 10
            if use_bland:
                entering = -1
                for j in range(allow_columns):
                    if reduced[j] < -self._tol:
                        entering = j
                        break
            else:
                entering = int(np.argmin(reduced))
                if reduced[entering] >= -self._tol:
                    entering = -1
            if entering < 0:
                return "optimal"

            column = tableau[:m, entering]
            positive = column > self._tol
            if not positive.any():
                return "unbounded"
            ratios = np.where(positive, tableau[:m, -1] / np.where(positive, column, 1.0), np.inf)
            leaving = int(np.argmin(ratios))
            if use_bland:
                best = ratios[leaving]
                candidates = [
                    r for r in range(m) if positive[r] and ratios[r] <= best + self._tol
                ]
                leaving = min(candidates, key=lambda r: basis[r])

            self._pivot(tableau, leaving, entering)
            basis[leaving] = entering

            objective = tableau[-1, -1]
            if objective > last_objective + self._tol:
                stall = 0
                last_objective = objective
            else:
                stall += 1
        return "iteration_limit"

    @staticmethod
    def _pivot(tableau: np.ndarray, row: int, col: int) -> None:
        pivot_value = tableau[row, col]
        tableau[row, :] /= pivot_value
        for r in range(tableau.shape[0]):
            if r != row and abs(tableau[r, col]) > 1e-13:
                tableau[r, :] -= tableau[r, col] * tableau[row, :]

    def _pivot_artificials_out(
        self, tableau: np.ndarray, basis: list[int], total_structural: int
    ) -> None:
        """Replace basic artificials (at zero level) with structural vars."""
        m = tableau.shape[0] - 1
        for row in range(m):
            if basis[row] >= total_structural:
                candidates = np.where(
                    np.abs(tableau[row, :total_structural]) > self._tol
                )[0]
                if candidates.size:
                    col = int(candidates[0])
                    self._pivot(tableau, row, col)
                    basis[row] = col
        # Remaining basic artificials correspond to redundant rows; their
        # columns must never re-enter, which _iterate guarantees by
        # limiting allow_columns.


def solve_lp(program: CompiledProgram) -> SimplexResult:
    """One-shot LP solve used by tests and the branch-and-bound driver."""
    return SimplexSolver().solve(program)


def check_feasible(
    program: CompiledProgram, x: np.ndarray, tol: float = 1e-6
) -> bool:
    """Verify a point satisfies all constraints and bounds."""
    if np.any(x < -tol):
        return False
    if np.any(x > program.upper_bounds + tol):
        return False
    if program.a_ub.size and np.any(program.a_ub @ x > program.b_ub + tol):
        return False
    if program.a_eq.size and np.any(np.abs(program.a_eq @ x - program.b_eq) > tol):
        return False
    return True

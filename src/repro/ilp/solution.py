"""MILP solution container."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SolverError
from repro.ilp.model import LinearProgram, Variable


@dataclass
class MilpSolution:
    """Outcome of a mixed-integer solve."""

    status: str  # "optimal" | "feasible" | "infeasible" | "node_limit"
    objective: float | None
    values: dict[str, float] = field(default_factory=dict)
    nodes_explored: int = 0
    gap: float = 0.0

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"

    @property
    def has_solution(self) -> bool:
        return self.status in ("optimal", "feasible")

    def value(self, var: Variable | str) -> float:
        name = var.name if isinstance(var, Variable) else var
        try:
            return self.values[name]
        except KeyError:
            raise SolverError(f"solution has no value for {name!r}") from None

    def selected(self, program: LinearProgram, prefix: str = "") -> list[str]:
        """Names of binary variables set to 1 (optionally name-filtered)."""
        chosen = []
        for var in program.variables:
            if not var.is_integer:
                continue
            if prefix and not var.name.startswith(prefix):
                continue
            if self.values.get(var.name, 0.0) > 0.5:
                chosen.append(var.name)
        return chosen

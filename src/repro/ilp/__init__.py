"""Integer linear programming substrate.

The paper solves index selection "using standard off-the-shelf
combinatorial solvers"; this package is that solver, built from scratch:
a dense two-phase simplex for LP relaxations and a best-first
branch-and-bound for mixed binary programs, plus an optional
``scipy.optimize.milp`` (HiGHS) backend for cross-checking.
"""

from repro.ilp.model import Constraint, LinearProgram, Sense, Variable
from repro.ilp.branch_bound import BranchAndBoundSolver, solve_milp
from repro.ilp.simplex import SimplexResult, SimplexSolver
from repro.ilp.solution import MilpSolution

__all__ = [
    "BranchAndBoundSolver",
    "Constraint",
    "LinearProgram",
    "MilpSolution",
    "Sense",
    "SimplexResult",
    "SimplexSolver",
    "Variable",
    "solve_milp",
]

"""Closed-loop fleet serving: route, watch, re-tune, roll out, guard.

The divergent tuner (:mod:`repro.fleet.tuner`) answers "what should
each replica's design be"; this module *drives* a live fleet with that
answer and guards it. The :class:`FleetController` closes the loop:

* **Serve** — every observed statement is routed by the cost-table
  :class:`~repro.fleet.router.Router` and fed into that replica's own
  :class:`~repro.online.monitor.WorkloadMonitor`, so each replica
  accumulates exactly the traffic it actually serves.
* **Watch** — at a fixed check interval the per-replica monitors are
  merged (:meth:`WorkloadMonitor.merge`) and the fleet-level window
  distribution is compared against the baseline of the last tune;
  each serving replica's local window is checked the same way. Either
  scope drifting triggers a re-tune.
* **Re-tune** — a fresh :class:`~repro.fleet.tuner.DivergentTuner`
  runs against the *pristine* advising catalog (frozen at construction,
  managed indexes stripped — advising against materialized designs
  would zero the very benefits that justified them) on the merged
  monitor, producing new per-replica designs and a new router.
* **Roll out** — designs land **replica by replica** through the
  journaled :class:`~repro.resilience.apply.ApplyExecutor`. The
  invariant, proven by test: at most one replica is in transition at
  any observable step. The router excludes the in-transition replica,
  re-pricing its load onto the survivors, and restores it afterwards.
* **Guard** — after each replica's apply, a health gate re-prices that
  replica's live window under the new design and under the design it
  replaced. A regressing window starts a probation counter; a
  configurable number of *consecutive* regressing windows confirms the
  regression, triggers an automatic journaled rollback of that replica
  only, and **freezes** the fleet (no further drift-driven rollouts;
  serving continues). A crashed or faulted apply (the ``replica.apply``
  fault point, or a real executor error) **quarantines** the replica —
  it leaves serving rotation, the survivors absorb its load, and the
  rollout moves on instead of aborting the fleet.

**Durability.** All rollout state flows through a pluggable
:class:`~repro.resilience.store.StateStore`: a ``state_path`` is sugar
for a :class:`~repro.resilience.store.FileStateStore` on that path
(byte-compatible with pre-store envelopes), and a ``store`` argument
can swap in the :class:`~repro.resilience.store.DatabaseStateStore`,
which keeps the envelope and every per-replica apply journal *inside
the monitored database* — a daemon restarted on a fresh host with zero
local state files resumes the same serve loop. Every rollout step is
journaled (through the ``rollout.journal`` fault point) *before* the
step becomes observable, and the per-replica apply journals ride
alongside in slots ``rN.apply`` (files ``STATE.rN.apply`` under the
file backend). A SIGKILL at any instant — between journal writes,
mid-apply, mid-rollback — resumes from the envelope to the same
terminal fleet state an uninterrupted run reaches: standing designs
re-materialize idempotently, an in-flight transition re-runs its
(resumable) apply, an in-flight rollback finishes, and the statement
suffix replays from the journaled stream position, repeating every
drift check and validation verdict deterministically. A fenced store
(one whose lease was acquired) additionally rejects every write from a
superseded daemon with :class:`~repro.errors.StaleLeaseError`, so a
stale host coming back after failover cannot clobber the new owner's
journal.

Fault points: ``replica.apply`` (one replica's apply inside a rollout
— quarantines), ``rollout.journal`` (one controller journal write —
propagates, simulating process death), ``validate.window`` (one health
gate evaluation — that window is skipped with a degradation event,
counting neither for nor against the probation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.catalog.schema import Index, index_signature
from repro.errors import (
    ApplyConflictError,
    CanonicalizeError,
    ExecutorError,
    FaultInjected,
    ReproError,
    StateCorruptError,
    TokenizeError,
)
from repro.fleet.router import Router
from repro.online.drift import DriftDetector
from repro.online.monitor import WorkloadMonitor
from repro.optimizer.config import PlannerConfig
from repro.optimizer.planner import Planner
from repro.parallel.caches import CostCache
from repro.resilience.apply import (
    MANAGED_PREFIX,
    ApplyExecutor,
    index_from_dict,
    index_to_dict,
)
from repro.resilience.faults import FaultInjector, resolve
from repro.resilience.store import FileStateStore, StateStore
from repro.storage.database import Database
from repro.workloads.workload import Workload

# Serialization format of FleetController.save_state()/restore.
FLEET_STATE_VERSION = 1

# Cost-comparison slack for the health gate; plan costs are float sums.
_EPS = 1e-9

#: Every event kind the controller can emit, in rough lifecycle order.
FLEET_EVENT_KINDS = (
    "drifted",
    "re-tuned",
    "rollout-started",
    "transition-started",
    "applied",
    "transition-finished",
    "skipped",
    "rollout-finished",
    "validated",
    "regressed",
    "rolled-back",
    "frozen",
    "quarantined",
    "degraded",
    "resumed",
    "thawed",
    "released",
)

#: Replica lifecycle states.
REPLICA_STATUSES = (
    "serving",       # in rotation under its standing design
    "quarantined",   # faulted apply; out of rotation, old design stands
    "rolling-back",  # confirmed regression; journaled rollback in flight
    "rolled-back",   # rollback finished; serving its pre-apply design
)


@dataclass(frozen=True)
class FleetEvent:
    """One observable controller action (drift, apply, rollback, ...)."""

    kind: str
    sequence: int  # stream position when the event fired
    replica_id: int | None = None
    detail: str = ""

    def __str__(self) -> str:
        where = f" replica {self.replica_id}" if self.replica_id is not None else ""
        return f"[{self.sequence}]{where} {self.kind}: {self.detail}"


class _ReplicaRuntime:
    """Everything the controller tracks per fleet member."""

    def __init__(
        self,
        replica_id: int,
        database: Database,
        monitor: WorkloadMonitor,
        journal_key: str | None,
    ) -> None:
        self.replica_id = replica_id
        self.database = database
        self.monitor = monitor
        self.journal_key = journal_key
        self.design: tuple[Index, ...] = ()
        self.status = "serving"
        self.detail = ""  # quarantine/rollback reason, for reporting
        #: Local drift baseline (window distribution at the last tune).
        self.baseline: dict[str, float] | None = None
        #: Post-apply health-gate state: {"old": [index dicts],
        #: "left": windows remaining, "regressions": consecutive count}.
        self.probation: dict | None = None


def _normalize_design(design: Sequence[Index]) -> tuple[Index, ...]:
    return tuple(sorted(design, key=lambda ix: (ix.table_name, ix.columns)))


def _signatures(design: Sequence[Index]) -> frozenset:
    return frozenset(index_signature(ix) for ix in design)


class FleetController:
    """Drive a live replicated fleet: serve, re-tune, roll out, guard.

    Args:
        databases: One :class:`Database` per replica (index 0 is also
            the advising primary). Fork them with ``Database.clone()``
            — the catalogs must describe the same schema.
        config: Planner configuration shared by routing-cost validation
            and re-tuning.
        budget_pages: Per-replica storage budget for re-tunes.
        state_path: Rollout journal / resume envelope as a local file —
            sugar for ``store=FileStateStore(state_path)``, byte-
            compatible with envelopes written before the store existed.
            ``None`` (with no ``store``) runs purely in memory (no
            crash safety). Per-replica apply journals derive from it
            (``STATE.rN.apply``).
        store: A :class:`~repro.resilience.store.StateStore` holding
            the envelope (slot ``""``) and the per-replica apply
            journals (slots ``rN.apply``). Wins over ``state_path``.
            With a :class:`DatabaseStateStore` the whole serve loop
            survives host loss; with a fenced store a superseded
            daemon's writes raise
            :class:`~repro.errors.StaleLeaseError` instead of
            corrupting the journal.
        window_size: Per-replica monitor window.
        check_interval: Statements between drift/validation checks.
        warmup: Statements before the first tune (default: window_size).
        state_interval: Statements between periodic (best-effort) state
            checkpoints; rollout-critical journal writes are unaffected.
        drift: Drift detector for both fleet-level and per-replica
            checks (default thresholds when ``None``).
        regression_windows: Consecutive regressing validation windows
            that confirm a regression and trigger rollback + freeze.
        regression_tolerance: Relative slack before a window counts as
            regressing (``new > old * (1 + tolerance)``).
        probation_windows: Validation windows a freshly applied design
            stays under the health gate before it is trusted.
        retry_steps: Passed to every executor apply/rollback; kill
            sweeps set False so injected faults abort deterministically.
        max_share / max_rounds / seed / workers / advisor_knobs /
            cost_cache / cache_max_entries: forwarded to re-tunes
            (see :class:`DivergentTuner`).
        fault_injector: Explicit injector; ``None`` defers to the
            ambient ``REPRO_FAULTS`` injector at each fault point.
        listener: Callback receiving every :class:`FleetEvent`.
    """

    def __init__(
        self,
        databases: Sequence[Database],
        config: PlannerConfig | None = None,
        *,
        budget_pages: int,
        state_path: str | None = None,
        store: StateStore | None = None,
        window_size: int = 64,
        check_interval: int = 32,
        warmup: int | None = None,
        state_interval: int = 64,
        decay: float = 0.995,
        drift: DriftDetector | None = None,
        regression_windows: int = 2,
        regression_tolerance: float = 0.1,
        probation_windows: int = 4,
        retry_steps: bool = True,
        max_share: float = 1.0,
        max_rounds: int = 4,
        seed: int = 0,
        workers: int = 1,
        advisor_knobs: dict | None = None,
        cost_cache: CostCache | None = None,
        cache_max_entries: int | None = None,
        fault_injector: FaultInjector | None = None,
        listener: Callable[[FleetEvent], None] | None = None,
    ) -> None:
        if not databases:
            raise ReproError("a fleet needs at least one database")
        if check_interval <= 0:
            raise ReproError("check_interval must be positive")
        if state_interval <= 0:
            raise ReproError("state_interval must be positive")
        if regression_windows <= 0:
            raise ReproError("regression_windows must be positive")
        if regression_tolerance < 0:
            raise ReproError("regression_tolerance must be non-negative")
        self.n_replicas = len(databases)
        self._config = config or PlannerConfig()
        self._budget_pages = int(budget_pages)
        self._state_path = state_path
        if store is None and state_path:
            store = FileStateStore(state_path, fault_injector=fault_injector)
        self._store = store
        self.window_size = window_size
        self.check_interval = check_interval
        self.warmup = window_size if warmup is None else warmup
        self.state_interval = state_interval
        self._drift = drift or DriftDetector()
        self.regression_windows = regression_windows
        self.regression_tolerance = regression_tolerance
        self.probation_windows = probation_windows
        self._retry_steps = retry_steps
        self._max_share = max_share
        self._max_rounds = max_rounds
        self._seed = seed
        self._workers = workers
        self._advisor_knobs = dict(advisor_knobs or {})
        self._cost_cache = cost_cache if cost_cache is not None else CostCache()
        self._cache_max_entries = cache_max_entries
        self._fault_injector = fault_injector
        self._listener = listener

        self._replicas = [
            _ReplicaRuntime(
                rid,
                db,
                WorkloadMonitor(window_size=window_size, decay=decay),
                f"r{rid}.apply" if self._store is not None else None,
            )
            for rid, db in enumerate(databases)
        ]
        # The advising catalog is frozen *pristine*: managed (idx_)
        # materializations are stripped so a controller constructed
        # over already-applied databases (an in-process resume, a
        # restart mid-experiment) advises from the same zero point as
        # a cold one — otherwise post-resume re-tunes would see zero
        # benefit for standing indexes and diverge from the clean run.
        self._advise_catalog = databases[0].catalog.clone()
        for name in [
            ix.name
            for ix in self._advise_catalog.indexes()
            if ix.name.startswith(MANAGED_PREFIX) and not ix.hypothetical
        ]:
            self._advise_catalog.drop_index(name)
        self._router = Router({}, self.n_replicas, max_share=max_share)
        self._baseline: dict[str, float] | None = None
        self._position = 0
        self._phase = "serving"
        self._rollout: dict | None = None
        self._regressed: dict | None = None
        self._retunes = 0
        self._validation_catalogs: dict[frozenset, object] = {}
        self.events: list[FleetEvent] = []
        self.event_counts: dict[str, int] = {k: 0 for k in FLEET_EVENT_KINDS}
        self.resumed = False
        self._pending_resume = False
        if self._store is not None and self._store.exists(""):
            try:
                state, _source = self._store.read("")
            except StateCorruptError as exc:
                # Only the first-ever write can tear both candidates
                # (no .bak exists yet), and it happens before anything
                # is materialized — starting cold replays the stream
                # to the same terminal state.
                self._emit(
                    "degraded",
                    detail=f"state unrecoverable, starting cold: {exc}",
                )
            else:
                self._restore(state)
                self.resumed = True
                self._pending_resume = True

    # ------------------------------------------------------------------
    # Introspection

    @property
    def router(self) -> Router:
        return self._router

    @property
    def store(self) -> StateStore | None:
        """The state store holding the envelope and apply journals."""
        return self._store

    @property
    def regressed(self) -> dict | None:
        """The design a confirmed regression rolled back (while frozen).

        ``{"replica": id, "design": [index dicts], "position": n}`` —
        what ``thaw()`` reports to the acknowledging operator; ``None``
        when the fleet is not frozen.
        """
        return dict(self._regressed) if self._regressed else None

    @property
    def position(self) -> int:
        """Statements observed (stream position for resume)."""
        return self._position

    @property
    def phase(self) -> str:
        """``serving`` | ``rollout`` | ``frozen``."""
        return self._phase

    @property
    def frozen(self) -> bool:
        return self._phase == "frozen"

    @property
    def in_transition(self) -> int | None:
        """The replica currently transitioning, if a rollout is active."""
        if self._rollout is None:
            return None
        return self._rollout["in_transition"]

    @property
    def replicas(self) -> list[_ReplicaRuntime]:
        return list(self._replicas)

    def designs(self) -> list[tuple[Index, ...]]:
        """The standing design of every replica, by replica id."""
        return [tuple(rt.design) for rt in self._replicas]

    def merged_monitor(self) -> WorkloadMonitor:
        """All per-replica monitors merged into one fleet-level view."""
        merged = self._replicas[0].monitor
        for runtime in self._replicas[1:]:
            merged = merged.merge(runtime.monitor)
        if len(self._replicas) == 1:
            # Uniform return contract: never alias a live monitor.
            merged = merged.merge(
                WorkloadMonitor(window_size=1, decay=merged.decay)
            )
        return merged

    # ------------------------------------------------------------------
    # Events

    def _emit(
        self, kind: str, replica_id: int | None = None, detail: str = ""
    ) -> FleetEvent:
        event = FleetEvent(
            kind=kind,
            sequence=self._position,
            replica_id=replica_id,
            detail=detail,
        )
        self.events.append(event)
        self.event_counts[kind] = self.event_counts.get(kind, 0) + 1
        if self._listener is not None:
            self._listener(event)
        return event

    # ------------------------------------------------------------------
    # Serving loop

    def observe(self, sql: str, weight: float = 1.0) -> int:
        """Route one statement into the fleet; returns the replica id.

        Drift checks, probation validations, re-tunes, and rollouts all
        run synchronously inside the triggering ``observe`` call, so
        callers see a fleet that is always settled between statements.

        An untemplatable statement (:class:`TokenizeError` /
        :class:`CanonicalizeError`) still advances the stream position
        — ``position`` is the resume cursor, and a replayed stream must
        skip exactly as many statements as were fed — before the error
        re-raises for the caller to log.
        """
        self._ensure_resumed()
        self._position += 1
        untemplatable: Exception | None = None
        replica_id = -1
        try:
            replica_id = self._router.route(sql, weight)
            self._replicas[replica_id].monitor.observe(sql)
        except (TokenizeError, CanonicalizeError) as exc:
            untemplatable = exc
        if self._position % self.check_interval == 0:
            self._checkpoint_cycle()
        if self._store is not None and self._position % self.state_interval == 0:
            self._save_periodic()
        if untemplatable is not None:
            raise untemplatable
        return replica_id

    def _checkpoint_cycle(self) -> None:
        self._validate_probations()
        self._refresh_baselines()
        if self._phase != "serving":
            return
        if self._position < self.warmup:
            return
        scope = self._drift_scope()
        if scope is None:
            return
        merged = self.merged_monitor()
        if self._baseline is not None:
            self._emit("drifted", detail=scope)
        result = self._retune(merged)
        if result is None:
            return
        self.rollout(
            [tuple(replica.design) for replica in result.replicas],
            router=result.router,
        )

    def _refresh_baselines(self) -> None:
        """Adopt a local drift baseline once a restarted window refills.

        A transition clears the replica's window (its mix changed with
        the new routing); comparing drift against the pre-rollout mix
        would fire spuriously, so the baseline stays unset until the
        window holds at least half its capacity of post-rollout traffic.
        """
        for runtime in self._replicas:
            if runtime.status == "quarantined" or runtime.baseline is not None:
                continue
            counts = runtime.monitor.window_counts
            if sum(counts.values()) * 2 >= self.window_size:
                runtime.baseline = runtime.monitor.window_distribution()

    def _drift_scope(self) -> str | None:
        """Why a re-tune is due (None when the fleet is stable)."""
        merged = self.merged_monitor()
        current = merged.window_distribution()
        if not current:
            return None
        if self._baseline is None:
            return "first tune"
        report = self._drift.compare(self._baseline, current)
        if report.drifted:
            return f"fleet: {report.reason}"
        for runtime in self._replicas:
            if runtime.status == "quarantined" or runtime.baseline is None:
                continue
            local = runtime.monitor.window_distribution()
            if not local:
                continue
            local_report = self._drift.compare(runtime.baseline, local)
            if local_report.drifted:
                return f"replica {runtime.replica_id}: {local_report.reason}"
        return None

    # ------------------------------------------------------------------
    # Re-tuning

    def _retune(self, merged: WorkloadMonitor):
        from repro.fleet.tuner import DivergentTuner

        tuner = DivergentTuner(
            self._advise_catalog,
            self._config,
            n_replicas=self.n_replicas,
            budget_pages=self._budget_pages,
            max_rounds=self._max_rounds,
            seed=self._seed,
            max_share=self._max_share,
            workers=self._workers,
            cost_cache=self._cost_cache,
            cache_max_entries=self._cache_max_entries,
            fault_injector=self._fault_injector,
            advisor_knobs=self._advisor_knobs or None,
        )
        try:
            result = tuner.tune(merged)
        except FaultInjected:
            raise
        except ReproError as exc:
            self._emit("degraded", detail=f"re-tune failed: {exc}")
            return None
        self._retunes += 1
        self._baseline = merged.window_distribution()
        self._emit(
            "re-tuned",
            detail=(
                f"{len(result.rounds)} round(s), fleet cost "
                f"{result.total_cost:,.0f}, "
                f"{'converged' if result.converged else 'round cap'}"
            ),
        )
        return result

    # ------------------------------------------------------------------
    # Rollout

    def rollout(
        self,
        designs: Sequence[Sequence[Index]],
        router: Router | None = None,
    ) -> None:
        """Roll per-replica designs out, one replica at a time.

        Public so harnesses (and the regression benchmark) can inject
        a design directly; the serving loop calls it after re-tunes.
        ``router`` replaces the serving router (its routing decisions
        are reset — a fresh rollout inherits pricing, never stale
        assignments — and quarantined replicas are re-excluded).
        """
        self._ensure_resumed()
        if len(designs) != self.n_replicas:
            raise ReproError(
                f"rollout needs {self.n_replicas} designs, got {len(designs)}"
            )
        if self._phase == "frozen":
            raise ReproError(
                "the fleet is frozen after a regression rollback; inspect "
                "the regressed design and acknowledge it with thaw() "
                "(fleet --serve --thaw) to resume re-tuning"
            )
        if self._rollout is not None:
            raise ReproError("a rollout is already in progress")
        if router is not None:
            router.reset()
            self._router = router
        for runtime in self._replicas:
            if runtime.status == "quarantined":
                self._exclude_quietly(runtime.replica_id)
        self._rollout = {
            "targets": [
                [index_to_dict(ix) for ix in _normalize_design(d)]
                for d in designs
            ],
            "position": 0,
            "in_transition": None,
        }
        self._phase = "rollout"
        self._emit(
            "rollout-started",
            detail=f"{self.n_replicas} replica(s), retune #{self._retunes}",
        )
        self._validation_catalogs.clear()
        self._journal_state()
        self._run_rollout()

    def _run_rollout(self) -> None:
        while self._phase == "rollout" and (
            self._rollout["position"] < self.n_replicas
        ):
            rid = self._rollout["position"]
            runtime = self._replicas[rid]
            target = self._rollout_target(rid)
            if runtime.status == "quarantined":
                self._emit("skipped", rid, "quarantined")
                self._advance_rollout()
                continue
            if _signatures(target) == _signatures(runtime.design) and (
                self._executor(runtime).plan(target).is_noop
            ):
                # Same design, but the new router may still shift this
                # replica's mix — re-baseline once the window refills.
                runtime.baseline = None
                self._emit("skipped", rid, "design unchanged")
                self._advance_rollout()
                continue
            self._transition(rid, target)
        if self._phase == "rollout":
            self._rollout = None
            self._phase = "serving"
            self._emit("rollout-finished")
            self._journal_state()

    def _rollout_target(self, rid: int) -> tuple[Index, ...]:
        return tuple(
            index_from_dict(d) for d in self._rollout["targets"][rid]
        )

    def _advance_rollout(self) -> None:
        self._rollout["position"] += 1
        self._journal_state()

    def _transition(self, rid: int, target: tuple[Index, ...]) -> None:
        runtime = self._replicas[rid]
        self._rollout["in_transition"] = rid
        excluded = self._exclude_quietly(rid)
        self._emit(
            "transition-started",
            rid,
            f"{len(target)} target index(es)"
            + ("" if excluded else "; sole replica, stays in rotation"),
        )
        self._journal_state()
        try:
            report = self._apply_replica(runtime, target)
        except FaultInjected as exc:
            if exc.point != "replica.apply":
                # A deeper fault (journal.write, index.build after
                # retry, rollout.journal) stands in for process death:
                # propagate so the kill/resume harness takes over.
                raise
            self._quarantine(rid, str(exc))
            self._rollout["in_transition"] = None
            self._advance_rollout()
            return
        except (ApplyConflictError, ExecutorError) as exc:
            self._quarantine(rid, str(exc))
            self._rollout["in_transition"] = None
            self._advance_rollout()
            return
        old_design = runtime.design
        runtime.design = target
        runtime.status = "serving"
        runtime.detail = ""
        runtime.probation = {
            "old": [index_to_dict(ix) for ix in old_design],
            "left": self.probation_windows,
            "regressions": 0,
        }
        # The rollout re-prices routing, so the traffic this replica
        # serves from here on is not the mix in its window. Restart the
        # window (templates and profile survive) and re-baseline once
        # it refills: the health gate and drift detector must judge the
        # new design on traffic it actually serves.
        runtime.monitor.clear_window()
        runtime.baseline = None
        self._emit("applied", rid, report.summary())
        if excluded:
            self._router.restore(rid)
        self._rollout["in_transition"] = None
        self._emit("transition-finished", rid)
        if self._phase == "rollout":
            self._advance_rollout()
        else:
            self._journal_state()

    def _apply_replica(self, runtime: _ReplicaRuntime, target) -> object:
        injector = resolve(self._fault_injector)
        if injector is not None:
            injector.check(
                "replica.apply",
                f"replica {runtime.replica_id} position {self._position}",
            )
        executor = self._executor(runtime)
        # A journal left mid-rollback (killed while rolling a regressed
        # design back) must finish rolling back before a new apply can
        # target it; ApplyExecutor refuses the mix on purpose.
        journal_phase = self._journal_phase(runtime)
        if journal_phase == "rollback-in-progress":
            executor.rollback(retry_steps=self._retry_steps)
        elif journal_phase == "in-progress":
            # Finish whatever intent the journal records before planning
            # the new target. A torn journal write can resurface a stale
            # earlier intent from the .bak rotation; converging it first
            # (already-satisfied steps fast-forward) and then planning
            # the real target against the observed state is correct for
            # both the stale and the genuinely-interrupted case.
            executor.apply(retry_steps=self._retry_steps)
        return executor.apply(target, retry_steps=self._retry_steps)

    def _executor(self, runtime: _ReplicaRuntime) -> ApplyExecutor:
        if runtime.journal_key is None:
            return ApplyExecutor(
                runtime.database, fault_injector=self._fault_injector
            )
        return ApplyExecutor(
            runtime.database,
            fault_injector=self._fault_injector,
            store=self._store,
            journal_key=runtime.journal_key,
        )

    def _journal_phase(self, runtime: _ReplicaRuntime) -> str | None:
        if (
            runtime.journal_key is None
            or self._store is None
            or not self._store.exists(runtime.journal_key)
        ):
            return None
        try:
            journal, _source = self._store.read(runtime.journal_key)
        except StateCorruptError:
            return None
        return journal.get("phase")

    def _exclude_quietly(self, rid: int) -> bool:
        """Exclude ``rid`` from rotation; False when it must keep serving."""
        try:
            self._router.exclude(rid)
        except ReproError:
            return False
        return True

    def _quarantine(self, rid: int, reason: str) -> None:
        runtime = self._replicas[rid]
        runtime.status = "quarantined"
        runtime.detail = reason
        excluded = self._exclude_quietly(rid)
        self._emit(
            "quarantined",
            rid,
            reason + ("" if excluded else " (sole replica, kept in rotation)"),
        )

    # ------------------------------------------------------------------
    # Health gate

    def _validate_probations(self) -> None:
        for runtime in self._replicas:
            if runtime.probation is None or runtime.status != "serving":
                continue
            verdict = self._validate_replica(runtime)
            if verdict == "confirmed":
                excluded = self._exclude_quietly(runtime.replica_id)
                self._confirm_regression(runtime)
                if excluded and runtime.status != "quarantined":
                    self._router.restore(runtime.replica_id)
                self._journal_state()

    def _validate_replica(self, runtime: _ReplicaRuntime) -> str:
        """One health-gate window: ``clean`` | ``regressed`` |
        ``confirmed`` | ``skipped``."""
        probation = runtime.probation
        injector = resolve(self._fault_injector)
        try:
            if injector is not None:
                injector.check(
                    "validate.window",
                    f"replica {runtime.replica_id} position {self._position}",
                )
            window = runtime.monitor.snapshot()
            if not len(window):
                self._emit(
                    "validated", runtime.replica_id, "empty window, skipped"
                )
                return "skipped"
            new_cost = self._design_cost(runtime.design, window)
            old_cost = self._design_cost(
                tuple(index_from_dict(d) for d in probation["old"]), window
            )
        except FaultInjected as exc:
            if exc.point != "validate.window":
                raise
            self._emit(
                "degraded",
                runtime.replica_id,
                f"validation window skipped: {exc}",
            )
            return "skipped"
        if new_cost > old_cost * (1.0 + self.regression_tolerance) + _EPS:
            probation["regressions"] += 1
            probation["left"] -= 1
            self._emit(
                "regressed",
                runtime.replica_id,
                f"window cost {new_cost:,.0f} vs {old_cost:,.0f} under the "
                f"replaced design ({probation['regressions']}/"
                f"{self.regression_windows} consecutive)",
            )
            if probation["regressions"] >= self.regression_windows:
                return "confirmed"
            return "regressed"
        probation["regressions"] = 0
        probation["left"] -= 1
        self._emit(
            "validated",
            runtime.replica_id,
            f"window cost {new_cost:,.0f} vs {old_cost:,.0f} "
            f"({probation['left']} window(s) of probation left)",
        )
        if probation["left"] <= 0:
            runtime.probation = None
        return "clean"

    def _design_cost(
        self, design: tuple[Index, ...], window: Workload
    ) -> float:
        """Planner cost of ``window`` under ``design`` (deterministic).

        Priced against a clone of the pristine advising catalog with
        the design layered on hypothetically — never against the live
        catalog — so an interrupted-and-resumed controller, whose live
        catalogs may be mid-delta, reproduces the exact costs of the
        uninterrupted run.
        """
        key = _signatures(design)
        catalog = self._validation_catalogs.get(key)
        if catalog is None:
            catalog = self._advise_catalog.clone()
            present = {index_signature(ix) for ix in catalog.indexes()}
            taken = set(catalog.index_names)
            for ix in design:
                if index_signature(ix) in present:
                    continue
                name = ix.name
                suffix = 2
                while name in taken:
                    name = f"{ix.name}__v{suffix}"
                    suffix += 1
                taken.add(name)
                catalog.add_index(
                    Index(
                        name=name,
                        table_name=ix.table_name,
                        columns=ix.columns,
                        unique=ix.unique,
                        hypothetical=True,
                    )
                )
            self._validation_catalogs[key] = catalog
        planner = Planner(catalog, self._config)
        total = 0.0
        for query in window:
            try:
                bound = self._cost_cache.bound_query(catalog, query.sql)
                total += planner.plan(bound).total_cost * query.weight
            except FaultInjected:
                raise
            except ReproError:
                # A template the pristine catalog cannot bind (e.g. it
                # references a fragment table); it prices the same —
                # not at all — under both designs, so skipping it never
                # biases the comparison.
                continue
        return total

    def _confirm_regression(self, runtime: _ReplicaRuntime) -> None:
        """Journaled rollback of one replica + fleet freeze."""
        rid = runtime.replica_id
        runtime.status = "rolling-back"
        if self._phase != "frozen":
            rollout_active = self._rollout is not None
            self._phase = "frozen"
            self._rollout = None
            # Remembered for the acknowledging operator: thaw() reports
            # exactly which design regressed, where, before resuming.
            self._regressed = {
                "replica": rid,
                "design": [index_to_dict(ix) for ix in runtime.design],
                "position": self._position,
            }
            self._emit(
                "frozen",
                rid,
                "sustained regression confirmed; rolling back replica "
                f"{rid}"
                + (" and freezing the rollout" if rollout_active else ""),
            )
        # Journal the decision before acting on it: a crash mid-rollback
        # resumes straight into finishing this rollback.
        self._journal_state()
        self._finish_rollback(runtime)

    def _finish_rollback(self, runtime: _ReplicaRuntime) -> None:
        old = tuple(
            index_from_dict(d) for d in (runtime.probation or {}).get("old", [])
        )
        executor = self._executor(runtime)
        if runtime.journal_key is not None and self._journal_phase(runtime):
            report = executor.rollback(retry_steps=self._retry_steps)
        else:
            # No journal (in-memory controller): restore by applying
            # the remembered pre-apply design directly.
            report = executor.apply(old, retry_steps=self._retry_steps)
        runtime.design = _normalize_design(old)
        runtime.status = "rolled-back"
        runtime.detail = "regression rollback"
        runtime.probation = None
        self._emit("rolled-back", runtime.replica_id, report.summary())
        self._journal_state()

    # ------------------------------------------------------------------
    # Operator controls

    def thaw(self) -> dict | None:
        """Acknowledge a confirmed regression; resume drift-driven tuning.

        A confirmed regression freezes the fleet so an unattended loop
        cannot keep re-applying a design that made things worse; thaw
        is the explicit operator acknowledgement. Returns the regressed
        record (``{"replica", "design", "position"}``) so the caller
        can show exactly what was rolled back — the same traffic mix
        may well re-derive the same design, and accepting that risk is
        what the acknowledgement means. The fleet goes back to
        ``serving`` in-process (no restart) and the decision is
        journaled immediately.

        Raises:
            ReproError: the fleet is not frozen.
        """
        self._ensure_resumed()
        if self._phase != "frozen":
            raise ReproError("the fleet is not frozen; nothing to thaw")
        info = self._regressed
        self._regressed = None
        self._phase = "serving"
        detail = "regression acknowledged; re-tuning resumed"
        if info:
            names = ", ".join(
                d.get("name", "?") for d in info.get("design", [])
            ) or "empty design"
            detail = (
                f"acknowledged regressed design on replica "
                f"{info.get('replica')} ({names}); re-tuning resumed"
            )
        self._emit("thawed", detail=detail)
        self._journal_state()
        return dict(info) if info else None

    def release(self, replica_id: int) -> None:
        """Release one quarantined replica back into serving rotation.

        Converges any journal the crashed apply left behind (an
        in-flight rollback finishes, an in-flight apply resumes), then
        re-materializes the replica's standing design idempotently,
        restores it to the router, and restarts its window — the same
        re-entry path a transitioned replica takes, so the health
        machinery judges it on traffic it actually serves.

        Raises:
            ReproError: the replica is not quarantined, or a rollout is
                in flight (release between rollouts).
        """
        self._ensure_resumed()
        if not 0 <= replica_id < self.n_replicas:
            raise ReproError(f"no replica {replica_id} in this fleet")
        if self._rollout is not None:
            raise ReproError("cannot release a replica mid-rollout")
        runtime = self._replicas[replica_id]
        if runtime.status != "quarantined":
            raise ReproError(
                f"replica {replica_id} is {runtime.status}, not quarantined"
            )
        executor = self._executor(runtime)
        journal_phase = self._journal_phase(runtime)
        if journal_phase == "rollback-in-progress":
            executor.rollback(retry_steps=self._retry_steps)
        elif journal_phase == "in-progress":
            executor.apply(retry_steps=self._retry_steps)
        if not executor.plan(runtime.design).is_noop:
            executor.apply(tuple(runtime.design), retry_steps=self._retry_steps)
        runtime.status = "serving"
        runtime.detail = ""
        runtime.probation = None
        runtime.monitor.clear_window()
        runtime.baseline = None
        try:
            self._router.restore(replica_id)
        except ReproError:
            pass  # was never excluded (sole replica kept in rotation)
        self._emit(
            "released", replica_id, "quarantine released; back in rotation"
        )
        self._journal_state()

    # ------------------------------------------------------------------
    # Durability

    def save_state(self) -> dict:
        """The full controller state as a versioned, JSON-able dict."""
        return {
            "version": FLEET_STATE_VERSION,
            "n_replicas": self.n_replicas,
            "position": self._position,
            "phase": self._phase,
            "retunes": self._retunes,
            "baseline": self._baseline,
            "router": self._router.save(),
            "event_counts": dict(self.event_counts),
            "rollout": dict(self._rollout) if self._rollout else None,
            "regressed": dict(self._regressed) if self._regressed else None,
            "replicas": [
                {
                    "status": runtime.status,
                    "detail": runtime.detail,
                    "design": [index_to_dict(ix) for ix in runtime.design],
                    "baseline": runtime.baseline,
                    "probation": dict(runtime.probation)
                    if runtime.probation
                    else None,
                    "monitor": runtime.monitor.save(),
                }
                for runtime in self._replicas
            ],
        }

    def _restore(self, state: dict) -> None:
        version = state.get("version")
        if version != FLEET_STATE_VERSION:
            raise ReproError(
                f"unsupported fleet state version {version!r} "
                f"(expected {FLEET_STATE_VERSION})"
            )
        if int(state["n_replicas"]) != self.n_replicas:
            raise ReproError(
                f"state describes {state['n_replicas']} replicas; "
                f"this fleet has {self.n_replicas}"
            )
        self._position = int(state["position"])
        self._phase = state["phase"]
        self._retunes = int(state.get("retunes", 0))
        self._baseline = state.get("baseline")
        self._router = Router.load(state["router"])
        self.event_counts.update(state.get("event_counts") or {})
        rollout = state.get("rollout")
        self._rollout = dict(rollout) if rollout else None
        regressed = state.get("regressed")
        self._regressed = dict(regressed) if regressed else None
        for runtime, saved in zip(self._replicas, state["replicas"]):
            runtime.status = saved["status"]
            runtime.detail = saved.get("detail", "")
            runtime.design = _normalize_design(
                index_from_dict(d) for d in saved["design"]
            )
            runtime.baseline = saved.get("baseline")
            probation = saved.get("probation")
            runtime.probation = dict(probation) if probation else None
            runtime.monitor = WorkloadMonitor.load(saved["monitor"])

    def _journal_state(self) -> None:
        """Rollout-critical journal write: faults and I/O errors propagate.

        Every observable rollout step is journaled *before* the next
        step runs, through the ``rollout.journal`` fault point — this
        is the hook the SIGKILL sweep drives. Without a store
        journaling is off (in-memory fleet, no crash safety). A
        :class:`~repro.errors.StaleLeaseError` propagates too: a fenced-
        out controller must stop, not keep serving on a journal it no
        longer owns.
        """
        if self._store is None:
            return
        self._store.write(
            "", self.save_state(), fault_point="rollout.journal"
        )

    def _save_periodic(self) -> None:
        """Best-effort steady-state checkpoint (stream position bump).

        I/O errors and injected write faults degrade (the previous
        checkpoint still resumes correctly); losing the lease does not —
        ``StaleLeaseError`` propagates so a superseded daemon dies
        instead of silently serving without durability.
        """
        try:
            self._store.write("", self.save_state(), fault_point="state.write")
        except (OSError, FaultInjected) as exc:
            self._emit("degraded", detail=f"state checkpoint failed: {exc}")

    # ------------------------------------------------------------------
    # Resume

    def resume(self) -> None:
        """Converge a restored controller back to a settled fleet.

        Idempotent; ``observe``/``rollout`` call it lazily. Standing
        designs re-materialize idempotently (a fresh process starts
        with index-free replicas), an interrupted per-replica rollback
        finishes, and an interrupted rollout re-runs from its journaled
        position — the in-transition replica's apply resumes through
        its own apply journal.
        """
        if not self._pending_resume:
            return
        self._pending_resume = False
        self._emit(
            "resumed",
            detail=f"position {self._position}, phase {self._phase}",
        )
        in_transition = (
            self._rollout["in_transition"] if self._rollout else None
        )
        for runtime in self._replicas:
            if runtime.status == "rolling-back":
                self._finish_rollback(runtime)
                continue
            if runtime.status == "quarantined":
                self._exclude_quietly(runtime.replica_id)
                continue
            if runtime.replica_id == in_transition or not runtime.design:
                continue
            executor = self._executor(runtime)
            journal_phase = self._journal_phase(runtime)
            if journal_phase == "rollback-in-progress":
                executor.rollback(retry_steps=self._retry_steps)
            elif journal_phase == "in-progress":
                executor.apply(retry_steps=self._retry_steps)
            if not executor.plan(runtime.design).is_noop:
                report = executor.apply(
                    tuple(runtime.design), retry_steps=self._retry_steps
                )
                self._emit(
                    "applied",
                    runtime.replica_id,
                    f"re-materialized standing design ({report.summary()})",
                )
        if self._rollout is not None:
            self._phase = "rollout"
            self._rollout["in_transition"] = None
            self._run_rollout()

    def _ensure_resumed(self) -> None:
        if self._pending_resume:
            self.resume()

"""One node of a replicated fleet: catalog clone, design, cost cache.

A replica is deliberately lightweight. Its catalog is a
:meth:`~repro.catalog.catalog.Catalog.clone` of the primary — a shallow
copy sharing the immutable schema and statistics objects — so forking N
replicas costs a few dict copies, not a data copy. What makes replicas
*diverge* is the standing design each one adopts: the fleet tuner runs
a per-cluster :class:`~repro.advisor.ilp_advisor.IlpIndexAdvisor`
against each replica's own catalog and cost cache, so replica 0 can
carry covering indexes for cone searches while replica 1 specializes
in photo–spec joins.

The per-replica :class:`~repro.parallel.caches.CostCache` matters for
round-over-round cost: catalog clones get fresh cache tokens, so a
replica's bound queries, Equation-1 sizes, and INUM plan-cache
snapshots persist across tuning rounds (a query that stays routed to
the same replica re-advises warm) without ever colliding with another
replica's entries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Index, index_signature
from repro.parallel.caches import CostCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.advisor.ilp_advisor import AdvisorResult


class Replica:
    """A fleet member: cloned catalog + standing design + cost cache."""

    def __init__(
        self,
        replica_id: int,
        catalog: Catalog,
        cost_cache: CostCache | None = None,
    ) -> None:
        self.replica_id = int(replica_id)
        self.catalog = catalog
        self.cost_cache = cost_cache if cost_cache is not None else CostCache()
        self.design: tuple[Index, ...] = ()
        #: The AdvisorResult behind the current design (None until the
        #: first adopt, or when the design was inherited unchanged).
        self.result: "AdvisorResult | None" = None
        #: Tuning rounds in which this replica re-advised.
        self.tuned_rounds = 0

    @classmethod
    def fork(
        cls,
        replica_id: int,
        primary: Catalog,
        cache_max_entries: int | None = None,
    ) -> "Replica":
        """A fresh replica cloned off the primary catalog."""
        return cls(
            replica_id,
            primary.clone(),
            CostCache(max_entries=cache_max_entries),
        )

    # ------------------------------------------------------------------

    def adopt(
        self,
        design: Iterable[Index],
        result: "AdvisorResult | None" = None,
    ) -> None:
        """Install a standing design (kept in a deterministic order)."""
        self.design = tuple(
            sorted(design, key=lambda ix: (ix.table_name, ix.columns))
        )
        self.result = result
        self.tuned_rounds += 1

    @property
    def design_signatures(self) -> tuple[tuple[str, tuple[str, ...]], ...]:
        """Order-stable (table, columns) signatures of the design."""
        return tuple(index_signature(ix) for ix in self.design)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Replica({self.replica_id}, design={len(self.design)} indexes, "
            f"tuned_rounds={self.tuned_rounds})"
        )

"""Divergent-design tuning for replicated fleets.

The fleet layer sits on top of every existing subsystem: it clusters a
workload by index-utilization similarity (priced through the batched
INUM evaluator), tunes one :class:`Replica` per cluster with the ILP
advisor fanned over the parallel engine, and routes statements to
whichever replica's design prices them cheapest. See
:mod:`repro.fleet.tuner` for the cluster→tune→route loop and its
convergence contract, and :mod:`repro.fleet.serve` for the closed
serving loop that re-tunes on drift, rolls designs out replica by
replica, and rolls a regressing replica back automatically.
"""

from repro.fleet.clusterer import WorkloadClusterer
from repro.fleet.replica import Replica
from repro.fleet.router import Router
from repro.fleet.serve import FleetController, FleetEvent
from repro.fleet.tuner import (
    DivergentTuner,
    FleetResult,
    FleetRound,
    UniformBaseline,
)

__all__ = [
    "DivergentTuner",
    "FleetController",
    "FleetEvent",
    "FleetResult",
    "FleetRound",
    "Replica",
    "Router",
    "UniformBaseline",
    "WorkloadClusterer",
]

"""Workload clustering by index-utilization similarity.

RITA's observation (PAPERS.md): on a replicated cluster the best fleet
design is rarely N copies of one design, because workloads decompose
into groups of queries that *use the same indexes*. Two cone searches
over ``photoobj(ra, dec)`` belong on the same replica; a photo–spec
join wants a different design entirely. The right similarity measure
is therefore not textual but physical: which candidate indexes would
benefit which queries, and by how much.

The clusterer embeds each workload query (in the fleet, each monitor
template) as an **index-utilization feature vector**: one dimension
per candidate index, valued by the fraction of the query's cost that
the candidate alone removes. The vectors come straight out of the
batched INUM evaluator
(:meth:`~repro.inum.batch.WorkloadEvaluator.utilization_fractions` —
one array evaluation prices every (query, candidate) pair), so
embedding a 30-template workload against a 100-candidate pool costs a
couple of matrix reductions, not thousands of optimizer calls.

The k-partition is a weighted k-means with deterministic, seeded
k-means++ initialization: every draw comes from one
``random.Random(seed)``, distances and centroid updates are plain
array arithmetic with first-index tie-breaks, and empty clusters are
repaired by a deterministic donor rule — so a fixed (workload, pool,
seed) always produces the same partition, which is what lets the fleet
benchmark assert byte-identical runs.
"""

from __future__ import annotations

import random
from typing import Sequence

import numpy as np

from repro.errors import ReproError


class WorkloadClusterer:
    """Deterministic weighted k-means over utilization features.

    Args:
        k: Number of partitions (one per replica).
        seed: Seed for the k-means++ initialization draws.
        max_iterations: Lloyd-iteration cap; the loop exits early the
            first time an iteration changes no assignment.
    """

    def __init__(
        self, k: int, seed: int = 0, max_iterations: int = 50
    ) -> None:
        if k <= 0:
            raise ReproError("cluster count k must be positive")
        if max_iterations <= 0:
            raise ReproError("max_iterations must be positive")
        self.k = k
        self.seed = seed
        self.max_iterations = max_iterations
        #: Lloyd iterations the last cluster() call used.
        self.iterations = 0

    # ------------------------------------------------------------------

    def cluster(
        self,
        features: np.ndarray,
        weights: Sequence[float] | None = None,
    ) -> list[int]:
        """Partition feature rows into ``k`` clusters.

        Args:
            features: ``(M, P)`` utilization matrix — one row per
                query, one column per candidate index.
            weights: Per-query weights (template frequencies); used in
                both the initialization draws and the centroid means so
                a hot template pulls its cluster's centroid harder than
                a rare one. Defaults to uniform.

        Returns:
            One cluster id in ``[0, k)`` per feature row. Cluster ids
            are ordered by first selection, so the partition (as a set
            of groups) is what is deterministic; ids are stable too for
            a fixed seed.
        """
        matrix = np.asarray(features, dtype=np.float64)
        if matrix.ndim != 2:
            raise ReproError("features must be a 2-D (queries, candidates) matrix")
        m = matrix.shape[0]
        if m == 0:
            return []
        if weights is None:
            weight_arr = np.ones(m, dtype=np.float64)
        else:
            weight_arr = np.asarray(list(weights), dtype=np.float64)
            if weight_arr.shape != (m,):
                raise ReproError("weights must align with feature rows")
            if np.any(weight_arr <= 0):
                raise ReproError("weights must be positive")
        k = min(self.k, m)
        rng = random.Random(self.seed)

        centroids = matrix[self._seed_centroids(matrix, weight_arr, k, rng)]
        assignment = np.zeros(m, dtype=np.int64)
        self.iterations = 0
        for _ in range(self.max_iterations):
            self.iterations += 1
            distances = self._distances(matrix, centroids)
            # argmin breaks ties toward the lowest cluster id.
            new_assignment = np.argmin(distances, axis=1)
            new_assignment = self._repair_empty(
                matrix, centroids, new_assignment, k
            )
            if np.array_equal(new_assignment, assignment) and self.iterations > 1:
                break
            assignment = new_assignment
            for c in range(k):
                members = assignment == c
                total = float(weight_arr[members].sum())
                if total > 0:
                    centroids[c] = (
                        weight_arr[members, None] * matrix[members]
                    ).sum(axis=0) / total
        return [int(c) for c in assignment]

    # ------------------------------------------------------------------

    @staticmethod
    def _distances(matrix: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        """Squared Euclidean distances ``(M, k)``."""
        diff = matrix[:, None, :] - centroids[None, :, :]
        return np.einsum("mkp,mkp->mk", diff, diff)

    @staticmethod
    def _seed_centroids(
        matrix: np.ndarray,
        weights: np.ndarray,
        k: int,
        rng: random.Random,
    ) -> list[int]:
        """k-means++ seeding with a seeded, deterministic RNG.

        The first centroid is drawn proportionally to query weight; each
        subsequent one proportionally to ``weight × D²`` (distance to
        the nearest chosen centroid). When every remaining point sits on
        a chosen centroid (D² all zero) the draw falls back to plain
        weights, so duplicated feature rows cannot stall the seeding.
        """

        def draw(probabilities: np.ndarray) -> int:
            total = float(probabilities.sum())
            if total <= 0:
                probabilities = weights
                total = float(probabilities.sum())
            target = rng.random() * total
            running = 0.0
            for position, p in enumerate(probabilities.tolist()):
                running += p
                if running >= target:
                    return position
            return len(probabilities) - 1  # float-tail guard

        chosen = [draw(weights)]
        while len(chosen) < k:
            d2 = np.min(
                WorkloadClusterer._distances(matrix, matrix[chosen]), axis=1
            )
            d2[chosen] = 0.0
            chosen.append(draw(weights * d2))
        return chosen

    @staticmethod
    def _repair_empty(
        matrix: np.ndarray,
        centroids: np.ndarray,
        assignment: np.ndarray,
        k: int,
    ) -> np.ndarray:
        """Donate one member to each empty cluster, deterministically.

        The donor is the point farthest from its own centroid among
        clusters that can spare one (>1 member), ties broken by the
        lowest row index — a pure function of the inputs, keeping the
        whole partition reproducible.
        """
        assignment = assignment.copy()
        for c in range(k):
            if np.any(assignment == c):
                continue
            counts = np.bincount(assignment, minlength=k)
            spareable = counts[assignment] > 1
            if not np.any(spareable):
                continue
            own = np.einsum(
                "mp,mp->m",
                matrix - centroids[assignment],
                matrix - centroids[assignment],
            )
            own[~spareable] = -np.inf
            donor = int(np.argmax(own))
            assignment[donor] = c
        return assignment

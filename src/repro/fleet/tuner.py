"""Divergent-design tuning: cluster → tune → route, to convergence.

PARINDA tunes one catalog. A production deployment serving the same
workload from N replicas has a strictly larger design space: each
replica can carry a *different* index set, and a statement can run on
whichever replica prices it cheapest. The fleet tuner searches that
space with the RITA-style alternating loop:

1. **Cluster** — embed every workload template as an index-utilization
   feature vector (:class:`~repro.fleet.clusterer.WorkloadClusterer`,
   priced through the batched INUM evaluator) and k-partition them,
   one cluster per replica.
2. **Tune** — run one :class:`~repro.advisor.ilp_advisor.IlpIndexAdvisor`
   per cluster against that replica's cloned catalog and private cost
   cache, all clusters fanned over a
   :class:`~repro.parallel.engine.EvaluationEngine`. Every advisor
   prices against the *same* shared candidate pool (the advisor's
   ``candidates=`` injection), so designs from different replicas are
   directly comparable, and the full resilience ladder — per-query
   quarantine, solver fallback, worker-crash retry→serialize — stays
   intact per cluster: one failing replica advise degrades to its
   previous design instead of aborting the fleet.
3. **Route** — re-price every template against every replica's new
   design in one batched evaluation and reassign each template to its
   cheapest replica (deterministic tie-break, optional load cap via
   :class:`~repro.fleet.router.Router`). The routed assignment becomes
   the next round's clustering.

The loop reaches a **fixed point when a route step changes no
assignment**: re-tuning identical clusters reproduces identical
designs (every advisor run is deterministic), so no further round can
change anything. Oscillation is bounded by ``max_rounds``; the result
reports ``converged`` either way and carries the full per-round
total-fleet-cost history.

Writes are replicated — every replica applies every INSERT/UPDATE/
DELETE — so the workload's ``update_rates`` are handed to *each*
per-cluster advisor unscaled, and write-hot tables suppress indexes on
every replica. The headline ``total_cost`` is the routed read cost
(Σ weight × cost of each template on its replica), the quantity
routing can actually change.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.advisor.candidates import CandidateIndex, generate_candidates
from repro.advisor.ilp_advisor import AdvisorResult, IlpIndexAdvisor
from repro.catalog.catalog import Catalog
from repro.catalog.schema import Index, index_signature
from repro.errors import AdvisorError, ReproError
from repro.fleet.clusterer import WorkloadClusterer
from repro.fleet.replica import Replica
from repro.fleet.router import Router
from repro.inum.batch import WorkloadEvaluator
from repro.online.monitor import WorkloadMonitor, canonicalize
from repro.optimizer.config import PlannerConfig
from repro.parallel.caches import CostCache
from repro.parallel.engine import EvaluationEngine, bind_workload
from repro.resilience.degrade import DegradedResult
from repro.resilience.faults import FaultInjector
from repro.workloads.workload import Query, Workload


@dataclass(frozen=True)
class FleetRound:
    """One cluster→tune→route iteration, as seen from outside."""

    number: int  # 1-based
    total_cost: float  # routed read cost after this round's tuning
    assignment: tuple[int, ...]  # template -> replica, workload order
    reassigned: int  # templates the route step moved
    cluster_sizes: tuple[int, ...]  # templates tuned per replica
    replica_costs: tuple[float, ...]  # routed cost served per replica
    designs_changed: bool  # any replica adopted a different design


@dataclass
class FleetResult:
    """Outcome of one divergent-design tuning run."""

    replicas: list[Replica]
    rounds: list[FleetRound]
    assignment: dict[str, int]  # template name -> replica id (final)
    total_cost: float  # routed read cost under the final designs
    converged: bool  # routing reached a fixed point within max_rounds
    router: Router  # ready to route live statements
    candidates_considered: int
    elapsed_seconds: float
    degraded: list[DegradedResult] = field(default_factory=list)

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    @property
    def designs(self) -> list[tuple[Index, ...]]:
        return [replica.design for replica in self.replicas]

    @property
    def total_indexes(self) -> int:
        return sum(len(replica.design) for replica in self.replicas)


@dataclass
class UniformBaseline:
    """The N-copies-of-one-design comparison point."""

    result: AdvisorResult
    total_cost: float  # same metric as FleetResult.total_cost


class DivergentTuner:
    """Tune an N-replica fleet to a divergent, routed design.

    Args:
        catalog: The primary catalog replicas are forked from.
        n_replicas: Fleet width (clusters, replicas, router columns).
        budget_pages: Per-replica storage budget — every replica gets
            the same budget, as hardware-identical replicas do.
        max_rounds: Cluster→tune→route iteration cap.
        seed: Clustering seed; a fixed (workload, seed) pair makes the
            whole run deterministic.
        max_share: Router load cap (fraction of routed weight one
            replica may serve); 1.0 disables balancing.
        workers: Fan-out width for the per-cluster advisor runs (and
            the advisors' own model builds run serially under it).
        cost_cache: Fleet-level shared cache for candidate sizing,
            binding, and the clustering evaluator's model builds; each
            replica additionally keeps its own cache for its advisor
            runs. Defaults to a fresh unbounded cache.
        cache_max_entries: Bound for the per-replica caches.
        advisor_knobs: Extra ``IlpIndexAdvisor`` keyword arguments
            applied to every per-cluster advisor (``backend=``,
            ``solver_deadline=``, ``vectorize=``, ...).
    """

    def __init__(
        self,
        catalog: Catalog,
        config: PlannerConfig | None = None,
        *,
        n_replicas: int,
        budget_pages: int,
        max_rounds: int = 8,
        seed: int = 0,
        max_share: float = 1.0,
        workers: int = 1,
        parallel_mode: str = "auto",
        cost_cache: CostCache | None = None,
        cache_max_entries: int | None = None,
        fault_injector: FaultInjector | None = None,
        advisor_knobs: dict | None = None,
    ) -> None:
        if n_replicas <= 0:
            raise ReproError("n_replicas must be positive")
        if budget_pages <= 0:
            raise ReproError("budget_pages must be positive")
        if max_rounds <= 0:
            raise ReproError("max_rounds must be positive")
        self._catalog = catalog
        self._config = config or PlannerConfig()
        self.n_replicas = n_replicas
        self.budget_pages = budget_pages
        self.max_rounds = max_rounds
        self.seed = seed
        self.max_share = max_share
        self._workers = workers
        self._parallel_mode = parallel_mode
        self._cache = cost_cache if cost_cache is not None else CostCache()
        self._cache_max_entries = cache_max_entries
        self._fault_injector = fault_injector
        self._advisor_knobs = dict(advisor_knobs or {})

    # ------------------------------------------------------------------

    def tune(
        self,
        workload: "Workload | WorkloadMonitor",
        max_rounds: int | None = None,
    ) -> FleetResult:
        """Run cluster→tune→route until routing stops moving templates.

        ``workload`` is a plain :class:`Workload` or a live
        :class:`~repro.online.monitor.WorkloadMonitor` — the monitor
        path snapshots the window and weights templates by
        :meth:`~repro.online.monitor.WorkloadMonitor.utilization_profile`.
        """
        started = time.perf_counter()
        rounds_cap = max_rounds if max_rounds is not None else self.max_rounds
        workload = self._coerce_workload(workload)
        degraded: list[DegradedResult] = []

        candidates, evaluator, workload = self._prepare(workload, degraded)
        position_of = {
            index_signature(c.index): p for p, c in enumerate(candidates)
        }
        weights = [query.weight for query in workload]

        clusterer = WorkloadClusterer(self.n_replicas, seed=self.seed)
        assignment = clusterer.cluster(
            evaluator.utilization_fractions(), weights
        )
        replicas = [
            Replica.fork(r, self._catalog, self._cache_max_entries)
            for r in range(self.n_replicas)
        ]

        engine = EvaluationEngine(
            workers=self._workers,
            mode=self._parallel_mode,
            fault_injector=self._fault_injector,
        )
        rounds: list[FleetRound] = []
        converged = False
        costs = np.zeros((len(workload), self.n_replicas))
        for number in range(1, rounds_cap + 1):
            clusters: list[list[int]] = [[] for _ in range(self.n_replicas)]
            for qi, r in enumerate(assignment):
                clusters[r].append(qi)
            designs_changed = self._tune_clusters(
                workload, clusters, replicas, candidates, engine, degraded
            )
            costs = evaluator.per_query_costs(
                [
                    self._positions(replica.design, position_of)
                    for replica in replicas
                ]
            )  # (templates, replicas): one config column per design
            new_assignment, total, replica_costs = self._route(
                workload, costs
            )
            reassigned = sum(
                1 for a, b in zip(assignment, new_assignment) if a != b
            )
            rounds.append(
                FleetRound(
                    number=number,
                    total_cost=total,
                    assignment=tuple(new_assignment),
                    reassigned=reassigned,
                    cluster_sizes=tuple(len(c) for c in clusters),
                    replica_costs=tuple(replica_costs),
                    designs_changed=designs_changed,
                )
            )
            if new_assignment == assignment:
                # Routing is a fixed point: re-tuning these exact
                # clusters reproduces these exact designs, so nothing
                # can change in any later round.
                converged = True
                break
            assignment = new_assignment

        router = Router(
            {
                query.name: tuple(costs[qi].tolist())
                for qi, query in enumerate(workload)
            },
            self.n_replicas,
            max_share=self.max_share,
            fingerprints=self._fingerprints(workload),
        )
        return FleetResult(
            replicas=replicas,
            rounds=rounds,
            assignment={
                query.name: assignment[qi]
                for qi, query in enumerate(workload)
            },
            total_cost=rounds[-1].total_cost,
            converged=converged,
            router=router,
            candidates_considered=len(candidates),
            elapsed_seconds=time.perf_counter() - started,
            degraded=degraded,
        )

    def uniform_baseline(
        self, workload: "Workload | WorkloadMonitor"
    ) -> UniformBaseline:
        """The best single design copied to every replica.

        Tuned with the same per-replica budget and priced with the same
        evaluator arithmetic as the divergent run, so the two totals
        are directly comparable: under a uniform design routing cannot
        help, and the fleet total is just the workload's cost under
        that one design.
        """
        workload = self._coerce_workload(workload)
        degraded: list[DegradedResult] = []
        candidates, evaluator, workload = self._prepare(workload, degraded)
        advisor = IlpIndexAdvisor(
            self._catalog,
            self._config,
            cost_cache=self._cache,
            fault_injector=self._fault_injector,
            **self._advisor_knobs,
        )
        result = advisor.recommend(
            workload,
            self.budget_pages,
            update_rates=dict(workload.update_rates) or None,
            candidates=candidates,
        )
        position_of = {
            index_signature(c.index): p for p, c in enumerate(candidates)
        }
        per_query = evaluator.per_query_costs(
            [self._positions(tuple(result.indexes), position_of)]
        )[:, 0]
        total = 0.0
        for qi, query in enumerate(workload):
            total += float(per_query[qi]) * query.weight
        return UniformBaseline(result=result, total_cost=total)

    # ------------------------------------------------------------------
    # Pipeline stages

    def _coerce_workload(
        self, source: "Workload | WorkloadMonitor"
    ) -> Workload:
        """Accept a plain workload or a live monitor.

        The monitor path is the fleet's CoPhy-style workload
        compression: templates instead of raw statements, weighted by
        the monitor's normalized
        :meth:`~repro.online.monitor.WorkloadMonitor.utilization_profile`
        (held/quarantined templates and templates that slid out of the
        window contribute nothing), with the window's DML rates riding
        along for the maintenance model.
        """
        if not isinstance(source, WorkloadMonitor):
            return source
        profile = source.utilization_profile()
        if not profile:
            raise AdvisorError(
                "monitor has no advisable templates in its window"
            )
        snapshot = source.snapshot(name=f"fleet@{source.observed}")
        return Workload(
            queries=[
                Query(name=q.name, sql=q.sql, weight=profile[q.name])
                for q in snapshot
                if q.name in profile
            ],
            name=snapshot.name,
            update_rates=dict(snapshot.update_rates),
        )

    def _prepare(
        self, workload: Workload, degraded: list[DegradedResult]
    ) -> tuple[list[CandidateIndex], WorkloadEvaluator, Workload]:
        """Shared pool + fleet evaluator over the surviving workload."""
        bound = bind_workload(self._catalog, workload, self._cache)
        candidates = generate_candidates(
            self._catalog, workload, bound=bound, cost_cache=self._cache
        )
        advisor = IlpIndexAdvisor(
            self._catalog,
            self._config,
            workers=self._workers,
            parallel_mode=self._parallel_mode,
            cost_cache=self._cache,
            fault_injector=self._fault_injector,
            **self._advisor_knobs,
        )
        models = advisor.build_models(
            workload, bound=bound, cost_cache=self._cache, degraded=degraded
        )
        workload = IlpIndexAdvisor._surviving(workload, models, degraded)
        evaluator = WorkloadEvaluator(
            [models[query.name] for query in workload],
            [query.weight for query in workload],
            [c.index for c in candidates],
        )
        return candidates, evaluator, workload

    def _tune_clusters(
        self,
        workload: Workload,
        clusters: list[list[int]],
        replicas: list[Replica],
        candidates: list[CandidateIndex],
        engine: EvaluationEngine,
        degraded: list[DegradedResult],
    ) -> bool:
        """One advisor run per non-empty cluster, fanned over the engine.

        Returns True when any replica's design changed. A cluster whose
        advise fails outright keeps the replica's previous design (a
        stale-but-valid design beats an empty one on a live fleet) and
        records a ``fallback`` degradation; the engine's own
        ``worker.task`` retry→serialize ladder covers simulated pool
        crashes. Either way the fleet round completes.
        """
        update_rates = dict(workload.update_rates) or None

        def tune_one(
            r: int,
        ) -> tuple[tuple[Index, ...] | None, AdvisorResult | None, list]:
            queries = clusters[r]
            if not queries:
                return (), None, []
            sub = Workload(
                queries=[workload.queries[qi] for qi in queries],
                name=f"{workload.name}/replica{r}",
                update_rates=dict(workload.update_rates),
            )
            advisor = IlpIndexAdvisor(
                replicas[r].catalog,
                self._config,
                cost_cache=replicas[r].cost_cache,
                fault_injector=self._fault_injector,
                **self._advisor_knobs,
            )
            try:
                result = advisor.recommend(
                    sub,
                    self.budget_pages,
                    update_rates=update_rates,
                    candidates=candidates,
                )
            except ReproError as exc:
                return None, None, [
                    DegradedResult(
                        "fleet.advise",
                        f"replica {r}",
                        "fallback",
                        f"cluster advise failed ({exc}); keeping the "
                        "previous design",
                    )
                ]
            return tuple(result.indexes), result, list(result.degraded)

        outcomes = engine.map(
            tune_one,
            list(range(self.n_replicas)),
            labels=[f"fleet replica {r}" for r in range(self.n_replicas)],
        )
        degraded.extend(engine.drain_degraded())
        changed = False
        for r, (design, result, records) in enumerate(outcomes):
            degraded.extend(records)
            if design is None:  # failed advise: previous design stands
                continue
            before = replicas[r].design_signatures
            replicas[r].adopt(design, result)
            if replicas[r].design_signatures != before:
                changed = True
        return changed

    def _route(
        self, workload: Workload, costs: np.ndarray
    ) -> tuple[list[int], float, list[float]]:
        """Assign each template to its cheapest replica, under the cap.

        Deterministic by construction: templates are routed in workload
        order through a fresh :class:`Router` (min cost, ties to the
        lowest replica id), and the weighted total accumulates in the
        same order.
        """
        router = Router(
            {
                query.name: tuple(costs[qi].tolist())
                for qi, query in enumerate(workload)
            },
            self.n_replicas,
            max_share=self.max_share,
        )
        assignment: list[int] = []
        total = 0.0
        replica_costs = [0.0] * self.n_replicas
        for qi, query in enumerate(workload):
            chosen = router.route_template(query.name, weight=query.weight)
            assignment.append(chosen)
            served = float(costs[qi, chosen]) * query.weight
            total += served
            replica_costs[chosen] += served
        return assignment, total, replica_costs

    @staticmethod
    def _positions(
        design: tuple[Index, ...],
        position_of: dict[tuple[str, tuple[str, ...]], int],
    ) -> list[int]:
        """Pool positions of a design (drawn from the shared pool)."""
        return [
            position_of[sig]
            for sig in (index_signature(ix) for ix in design)
            if sig in position_of
        ]

    @staticmethod
    def _fingerprints(workload: Workload) -> dict[str, str]:
        """Canonical fingerprint -> template name, for live routing."""
        fingerprints: dict[str, str] = {}
        for query in workload:
            try:
                fingerprints[canonicalize(query.sql)] = query.name
            except ReproError:  # pragma: no cover - untemplatable SQL
                continue
        return fingerprints

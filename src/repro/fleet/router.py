"""Cost-based statement routing across a tuned fleet.

Once the divergent tuner has given every replica its own design, a
statement should run wherever its template prices cheapest. The router
is the runtime half of that contract:

* **Pricing** is a table, not a planner call: the tuner prices every
  template against every replica design through the batched INUM
  evaluator and hands the router one ``(template, replica) -> cost``
  matrix, so routing one statement costs a dict lookup plus a scan
  over N replicas.
* **Determinism**: among eligible replicas the minimum-cost one wins,
  with cost ties broken toward the lowest replica id. Two routers fed
  the same statement sequence produce the same routes — always, not
  just usually — which is what makes fleet behaviour replayable.
* **Load balance**: a ``max_share`` cap keeps the cheapest replica
  from absorbing the whole stream. The invariant, checked by property
  test: after every route, each replica's routed weight is at most
  ``max_share × total + grain``, where ``grain`` is the heaviest
  single statement routed so far (granularity allowance — a weight
  cannot be split across replicas). With ``max_share ≥ 1/N`` an
  eligible replica always exists: if every replica were over the cap,
  the loads would sum to more than the total routed weight.

Statements are matched to templates by the monitor's canonical
fingerprint (:func:`repro.online.monitor.canonicalize`), so literal
variations of a tuned template route identically. A statement whose
shape the tuner never saw has no cost row; it falls back to the
least-loaded replica (deterministic: lowest id on ties) and is counted
on :attr:`Router.unknown_routed`.

**Degenerate pricing.** Construction rejects non-finite or negative
cost entries with a typed :class:`~repro.errors.ReproError` — they can
only come from a broken pricing step, and min() over NaN rows would
silently produce order-dependent routes. An *all-zero* cost row is
legal but uninformative (an empty or zero-cost pricing workload);
rather than pinning every such statement to replica 0 by tie-break,
the router balances them like unknown templates — least-loaded, ties
to the lowest id, which under uniform weights degenerates to a clean
round-robin — and counts them on :attr:`Router.unpriced_routed`. An
empty cost table is likewise legal: every statement takes the
least-loaded fallback.

**Rotation control.** The fleet controller takes replicas out of
serving rotation one at a time (a rollout transition, a quarantined
apply): :meth:`Router.exclude` removes a replica from every subsequent
assignment — its load re-prices onto the survivors — and
:meth:`Router.restore` puts it back. Excluding the last serving
replica is refused: a fleet with nobody in rotation cannot route.
While replicas are excluded the load-cap invariant is measured against
the *surviving* rotation, so the cap may be exceeded on survivors by
exactly the excluded replicas' share — capacity loss, not a bug.

**Persistence.** :meth:`Router.save`/:meth:`Router.load` round-trip
the whole router (cost table, fingerprint map, loads, exclusions,
fallback counters) through a JSON-able dict so a restarted controller
resumes routing deterministically: the restored router routes any
suffix of the stream exactly as the original would have.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.errors import ReproError
from repro.online.monitor import canonicalize

# Float-comparison slack for the eligibility test; routed weights are
# sums of user-supplied weights, so exact equality is too brittle.
_EPS = 1e-9

# Serialization format of Router.save()/load().
ROUTER_STATE_VERSION = 1


class Router:
    """Assign statements to the replica whose design prices them cheapest.

    Args:
        costs: Per-template routing costs: template name -> one cost
            per replica (aligned with replica ids ``0..N-1``).
        n_replicas: Fleet width; every cost row must have this length.
        max_share: Load-balance cap — the maximum fraction of total
            routed weight any single replica may hold (up to the
            documented one-statement granularity allowance). Must be
            at least ``1/n_replicas`` or no valid routing exists.
        fingerprints: Canonical-fingerprint -> template-name map for
            routing raw SQL text. Statements are canonicalized and
            looked up here; omit it to route by template name only.
    """

    def __init__(
        self,
        costs: Mapping[str, Sequence[float]],
        n_replicas: int,
        *,
        max_share: float = 1.0,
        fingerprints: Mapping[str, str] | None = None,
    ) -> None:
        if n_replicas <= 0:
            raise ReproError("n_replicas must be positive")
        if not 0.0 < max_share <= 1.0:
            raise ReproError("max_share must be in (0, 1]")
        if max_share * n_replicas < 1.0 - _EPS:
            raise ReproError(
                f"max_share={max_share} cannot spread a stream over "
                f"{n_replicas} replicas (needs max_share >= 1/{n_replicas})"
            )
        self.n_replicas = n_replicas
        self.max_share = max_share
        self._costs: dict[str, tuple[float, ...]] = {}
        self._unpriced: set[str] = set()
        for name, row in costs.items():
            row = tuple(float(c) for c in row)
            if len(row) != n_replicas:
                raise ReproError(
                    f"cost row for {name!r} has {len(row)} entries; "
                    f"expected {n_replicas}"
                )
            for cost in row:
                if not math.isfinite(cost):
                    raise ReproError(
                        f"cost row for {name!r} contains non-finite "
                        f"entry {cost!r}"
                    )
                if cost < 0:
                    raise ReproError(
                        f"cost row for {name!r} contains negative "
                        f"entry {cost!r}"
                    )
            if not any(row):
                # All-zero row: the pricing step estimated zero cost
                # everywhere (empty evaluation workload, fully cached
                # zero-cost template...). "Cheapest replica" is
                # meaningless here, and min-with-tie-break would pin
                # every such statement to replica 0 — so treat the
                # template like an unpriced one and keep the fleet
                # level instead (least-loaded, ties to lowest id, which
                # under uniform weights is a deterministic round-robin).
                self._unpriced.add(name)
                continue
            self._costs[name] = row
        self._fingerprints = dict(fingerprints or {})
        self._excluded: set[int] = set()
        self._loads = [0.0] * n_replicas
        self._total = 0.0
        self._grain = 0.0
        #: Statements routed without a known template (fallback path).
        self.unknown_routed = 0
        #: Statements whose template had an all-zero cost row and was
        #: routed by load balance instead of price.
        self.unpriced_routed = 0
        #: Total statements routed.
        self.routed = 0

    # ------------------------------------------------------------------

    def route(self, statement: str, weight: float = 1.0) -> int:
        """Route one SQL statement; returns the chosen replica id."""
        name = self._fingerprints.get(canonicalize(statement))
        if name is None or (
            name not in self._costs and name not in self._unpriced
        ):
            self.unknown_routed += 1
            return self._assign(None, weight)
        if name in self._unpriced:
            self.unpriced_routed += 1
            return self._assign(None, weight)
        return self._assign(self._costs[name], weight)

    def route_template(self, name: str, weight: float = 1.0) -> int:
        """Route by template/query name (the tuner's own route step)."""
        row = self._costs.get(name)
        if row is None:
            if name in self._unpriced:
                self.unpriced_routed += 1
            else:
                self.unknown_routed += 1
        return self._assign(row, weight)

    def costs_for(self, name: str) -> tuple[float, ...] | None:
        """The routing-cost row for one template (None when unknown)."""
        return self._costs.get(name)

    # ------------------------------------------------------------------

    def _assign(self, row: Sequence[float] | None, weight: float) -> int:
        if weight <= 0:
            raise ReproError("statement weight must be positive")
        grain = max(self._grain, weight)
        cap = self.max_share * (self._total + weight) + grain + _EPS
        rotation = [
            r for r in range(self.n_replicas) if r not in self._excluded
        ]
        eligible = [r for r in rotation if self._loads[r] + weight <= cap]
        if not eligible:
            # With every replica in rotation this is unreachable for
            # max_share >= 1/N (see module doc); with exclusions the
            # survivors legitimately absorb the excluded share, so the
            # cap yields to availability.
            eligible = rotation
        if row is None:
            # No pricing: keep the fleet level. Lowest load wins, ties
            # toward the lowest replica id.
            chosen = min(eligible, key=lambda r: (self._loads[r], r))
        else:
            chosen = min(eligible, key=lambda r: (row[r], r))
        self._loads[chosen] += weight
        self._total += weight
        self._grain = grain
        self.routed += 1
        return chosen

    # ------------------------------------------------------------------
    # Rotation control (fleet rollouts / quarantine)

    def _check_replica(self, replica_id: int) -> int:
        replica_id = int(replica_id)
        if not 0 <= replica_id < self.n_replicas:
            raise ReproError(
                f"replica id {replica_id} out of range 0..{self.n_replicas - 1}"
            )
        return replica_id

    def exclude(self, replica_id: int) -> None:
        """Take one replica out of serving rotation.

        Subsequent assignments never pick it; its share re-prices onto
        the survivors. Idempotent. Refused when it would leave nobody
        in rotation — an empty rotation cannot route anything.
        """
        replica_id = self._check_replica(replica_id)
        if len(self._excluded | {replica_id}) >= self.n_replicas:
            raise ReproError(
                "cannot exclude the last replica in serving rotation"
            )
        self._excluded.add(replica_id)

    def restore(self, replica_id: int) -> None:
        """Return an excluded replica to serving rotation (idempotent)."""
        self._excluded.discard(self._check_replica(replica_id))

    @property
    def excluded(self) -> frozenset[int]:
        """Replica ids currently out of serving rotation."""
        return frozenset(self._excluded)

    # ------------------------------------------------------------------
    # Persistence

    def save(self) -> dict:
        """The full router state as a versioned, JSON-able dict."""
        return {
            "version": ROUTER_STATE_VERSION,
            "n_replicas": self.n_replicas,
            "max_share": self.max_share,
            "costs": {name: list(row) for name, row in self._costs.items()},
            "unpriced": sorted(self._unpriced),
            "fingerprints": dict(self._fingerprints),
            "excluded": sorted(self._excluded),
            "loads": list(self._loads),
            "total": self._total,
            "grain": self._grain,
            "unknown_routed": self.unknown_routed,
            "unpriced_routed": self.unpriced_routed,
            "routed": self.routed,
        }

    @classmethod
    def load(cls, state: dict) -> "Router":
        """Rebuild a router from :meth:`save` output.

        The restored router routes any statement suffix exactly as the
        saved one would have: cost table, fingerprint map, per-replica
        loads, the granularity allowance, exclusions, and the fallback
        counters all round-trip.
        """
        version = state.get("version")
        if version != ROUTER_STATE_VERSION:
            raise ReproError(
                f"unsupported router state version {version!r} "
                f"(expected {ROUTER_STATE_VERSION})"
            )
        router = cls(
            {name: row for name, row in state["costs"].items()},
            int(state["n_replicas"]),
            max_share=float(state["max_share"]),
            fingerprints=state.get("fingerprints") or {},
        )
        # Unpriced (all-zero) rows were filtered out of the cost table
        # at construction; restore their membership directly.
        router._unpriced = set(state.get("unpriced", ()))
        for replica_id in state.get("excluded", ()):
            router.exclude(replica_id)
        router._loads = [float(load) for load in state["loads"]]
        if len(router._loads) != router.n_replicas:
            raise ReproError("router state loads do not match n_replicas")
        router._total = float(state["total"])
        router._grain = float(state["grain"])
        router.unknown_routed = int(state["unknown_routed"])
        router.unpriced_routed = int(state["unpriced_routed"])
        router.routed = int(state["routed"])
        return router

    def save_to(self, store, key: str = "router") -> None:
        """Persist this router into one slot of a ``StateStore``.

        ``store`` is any :class:`~repro.resilience.store.StateStore`;
        the write carries the store's fencing token, so a stale daemon
        cannot overwrite the router a failed-over one is serving with.
        """
        store.write(key, self.save())

    @classmethod
    def load_from(cls, store, key: str = "router") -> "Router":
        """Rebuild a router from a ``StateStore`` slot (see :meth:`load`)."""
        state, _source = store.read(key)
        return cls.load(state)

    # ------------------------------------------------------------------

    @property
    def loads(self) -> tuple[float, ...]:
        """Routed weight per replica so far."""
        return tuple(self._loads)

    @property
    def total_weight(self) -> float:
        return self._total

    def shares(self) -> tuple[float, ...]:
        """Load fractions per replica (zeros before any routing)."""
        if self._total <= 0:
            return tuple(0.0 for _ in range(self.n_replicas))
        return tuple(load / self._total for load in self._loads)

    def reset(self) -> None:
        """Erase every routing decision; keep the pricing.

        Pinned semantics (property-tested): after ``reset()`` the
        router behaves exactly like a freshly constructed
        ``Router(costs, n_replicas, max_share=..., fingerprints=...)``
        — loads, the granularity allowance, exclusions, and all three
        fallback counters are cleared, so a fresh rollout can never
        inherit stale assignments or a stale rotation. Only the static
        pricing inputs (cost table, unpriced set, fingerprint map)
        survive.
        """
        self._loads = [0.0] * self.n_replicas
        self._total = 0.0
        self._grain = 0.0
        self._excluded = set()
        self.unknown_routed = 0
        self.unpriced_routed = 0
        self.routed = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Router(replicas={self.n_replicas}, templates={len(self._costs)}, "
            f"max_share={self.max_share}, routed={self.routed})"
        )

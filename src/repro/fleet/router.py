"""Cost-based statement routing across a tuned fleet.

Once the divergent tuner has given every replica its own design, a
statement should run wherever its template prices cheapest. The router
is the runtime half of that contract:

* **Pricing** is a table, not a planner call: the tuner prices every
  template against every replica design through the batched INUM
  evaluator and hands the router one ``(template, replica) -> cost``
  matrix, so routing one statement costs a dict lookup plus a scan
  over N replicas.
* **Determinism**: among eligible replicas the minimum-cost one wins,
  with cost ties broken toward the lowest replica id. Two routers fed
  the same statement sequence produce the same routes — always, not
  just usually — which is what makes fleet behaviour replayable.
* **Load balance**: a ``max_share`` cap keeps the cheapest replica
  from absorbing the whole stream. The invariant, checked by property
  test: after every route, each replica's routed weight is at most
  ``max_share × total + grain``, where ``grain`` is the heaviest
  single statement routed so far (granularity allowance — a weight
  cannot be split across replicas). With ``max_share ≥ 1/N`` an
  eligible replica always exists: if every replica were over the cap,
  the loads would sum to more than the total routed weight.

Statements are matched to templates by the monitor's canonical
fingerprint (:func:`repro.online.monitor.canonicalize`), so literal
variations of a tuned template route identically. A statement whose
shape the tuner never saw has no cost row; it falls back to the
least-loaded replica (deterministic: lowest id on ties) and is counted
on :attr:`Router.unknown_routed`.

**Degenerate pricing.** Construction rejects non-finite or negative
cost entries with a typed :class:`~repro.errors.ReproError` — they can
only come from a broken pricing step, and min() over NaN rows would
silently produce order-dependent routes. An *all-zero* cost row is
legal but uninformative (an empty or zero-cost pricing workload);
rather than pinning every such statement to replica 0 by tie-break,
the router balances them like unknown templates — least-loaded, ties
to the lowest id, which under uniform weights degenerates to a clean
round-robin — and counts them on :attr:`Router.unpriced_routed`. An
empty cost table is likewise legal: every statement takes the
least-loaded fallback.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.errors import ReproError
from repro.online.monitor import canonicalize

# Float-comparison slack for the eligibility test; routed weights are
# sums of user-supplied weights, so exact equality is too brittle.
_EPS = 1e-9


class Router:
    """Assign statements to the replica whose design prices them cheapest.

    Args:
        costs: Per-template routing costs: template name -> one cost
            per replica (aligned with replica ids ``0..N-1``).
        n_replicas: Fleet width; every cost row must have this length.
        max_share: Load-balance cap — the maximum fraction of total
            routed weight any single replica may hold (up to the
            documented one-statement granularity allowance). Must be
            at least ``1/n_replicas`` or no valid routing exists.
        fingerprints: Canonical-fingerprint -> template-name map for
            routing raw SQL text. Statements are canonicalized and
            looked up here; omit it to route by template name only.
    """

    def __init__(
        self,
        costs: Mapping[str, Sequence[float]],
        n_replicas: int,
        *,
        max_share: float = 1.0,
        fingerprints: Mapping[str, str] | None = None,
    ) -> None:
        if n_replicas <= 0:
            raise ReproError("n_replicas must be positive")
        if not 0.0 < max_share <= 1.0:
            raise ReproError("max_share must be in (0, 1]")
        if max_share * n_replicas < 1.0 - _EPS:
            raise ReproError(
                f"max_share={max_share} cannot spread a stream over "
                f"{n_replicas} replicas (needs max_share >= 1/{n_replicas})"
            )
        self.n_replicas = n_replicas
        self.max_share = max_share
        self._costs: dict[str, tuple[float, ...]] = {}
        self._unpriced: set[str] = set()
        for name, row in costs.items():
            row = tuple(float(c) for c in row)
            if len(row) != n_replicas:
                raise ReproError(
                    f"cost row for {name!r} has {len(row)} entries; "
                    f"expected {n_replicas}"
                )
            for cost in row:
                if not math.isfinite(cost):
                    raise ReproError(
                        f"cost row for {name!r} contains non-finite "
                        f"entry {cost!r}"
                    )
                if cost < 0:
                    raise ReproError(
                        f"cost row for {name!r} contains negative "
                        f"entry {cost!r}"
                    )
            if not any(row):
                # All-zero row: the pricing step estimated zero cost
                # everywhere (empty evaluation workload, fully cached
                # zero-cost template...). "Cheapest replica" is
                # meaningless here, and min-with-tie-break would pin
                # every such statement to replica 0 — so treat the
                # template like an unpriced one and keep the fleet
                # level instead (least-loaded, ties to lowest id, which
                # under uniform weights is a deterministic round-robin).
                self._unpriced.add(name)
                continue
            self._costs[name] = row
        self._fingerprints = dict(fingerprints or {})
        self._loads = [0.0] * n_replicas
        self._total = 0.0
        self._grain = 0.0
        #: Statements routed without a known template (fallback path).
        self.unknown_routed = 0
        #: Statements whose template had an all-zero cost row and was
        #: routed by load balance instead of price.
        self.unpriced_routed = 0
        #: Total statements routed.
        self.routed = 0

    # ------------------------------------------------------------------

    def route(self, statement: str, weight: float = 1.0) -> int:
        """Route one SQL statement; returns the chosen replica id."""
        name = self._fingerprints.get(canonicalize(statement))
        if name is None or (
            name not in self._costs and name not in self._unpriced
        ):
            self.unknown_routed += 1
            return self._assign(None, weight)
        if name in self._unpriced:
            self.unpriced_routed += 1
            return self._assign(None, weight)
        return self._assign(self._costs[name], weight)

    def route_template(self, name: str, weight: float = 1.0) -> int:
        """Route by template/query name (the tuner's own route step)."""
        row = self._costs.get(name)
        if row is None:
            if name in self._unpriced:
                self.unpriced_routed += 1
            else:
                self.unknown_routed += 1
        return self._assign(row, weight)

    def costs_for(self, name: str) -> tuple[float, ...] | None:
        """The routing-cost row for one template (None when unknown)."""
        return self._costs.get(name)

    # ------------------------------------------------------------------

    def _assign(self, row: Sequence[float] | None, weight: float) -> int:
        if weight <= 0:
            raise ReproError("statement weight must be positive")
        grain = max(self._grain, weight)
        cap = self.max_share * (self._total + weight) + grain + _EPS
        eligible = [
            r for r in range(self.n_replicas) if self._loads[r] + weight <= cap
        ]
        if not eligible:  # unreachable with max_share >= 1/N (see module doc)
            eligible = list(range(self.n_replicas))
        if row is None:
            # No pricing: keep the fleet level. Lowest load wins, ties
            # toward the lowest replica id.
            chosen = min(eligible, key=lambda r: (self._loads[r], r))
        else:
            chosen = min(eligible, key=lambda r: (row[r], r))
        self._loads[chosen] += weight
        self._total += weight
        self._grain = grain
        self.routed += 1
        return chosen

    # ------------------------------------------------------------------

    @property
    def loads(self) -> tuple[float, ...]:
        """Routed weight per replica so far."""
        return tuple(self._loads)

    @property
    def total_weight(self) -> float:
        return self._total

    def shares(self) -> tuple[float, ...]:
        """Load fractions per replica (zeros before any routing)."""
        if self._total <= 0:
            return tuple(0.0 for _ in range(self.n_replicas))
        return tuple(load / self._total for load in self._loads)

    def reset(self) -> None:
        """Clear the load counters (costs and fingerprints stay)."""
        self._loads = [0.0] * self.n_replicas
        self._total = 0.0
        self._grain = 0.0
        self.unknown_routed = 0
        self.unpriced_routed = 0
        self.routed = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Router(replicas={self.n_replicas}, templates={len(self._costs)}, "
            f"max_share={self.max_share}, routed={self.routed})"
        )

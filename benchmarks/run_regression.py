#!/usr/bin/env python
"""Performance-regression driver for the vectorized estimation core.

Measures ``IlpIndexAdvisor.recommend`` against the repo's seed:

* **seed**: the original serial implementation, with the InumModel
  loaded from the repo's root git commit so the comparison is against
  real history, not a reconstruction (falls back to the current scalar
  path when git is unavailable, and says so in the report);
* **serial / parallel**: the current code (vectorized evaluator) with
  ``workers=1`` and ``workers=4`` + a shared :class:`CostCache`;
* **scalar**: the current code with ``vectorize=False`` — the fallback
  ladder's reference path, which must stay bit-identical.

The E5 3-query slice checks engine correctness; the headline is the
**full 30-query SDSS survey workload**, where the warm advise (shared
cache, vectorized benefit matrix and refinement) must beat the seed by
at least the speedup floor with bit-identical recommendations. Phase
timings from :attr:`AdvisorResult.phase_seconds` attribute the win.
A final check asserts no shared-memory segments survive the runs.
Everything lands in ``BENCH_PR6.json``.

Usage::

    PYTHONPATH=src python benchmarks/run_regression.py          # full
    PYTHONPATH=src python benchmarks/run_regression.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
import types
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.advisor.candidates import generate_candidates  # noqa: E402
from repro.advisor.ilp_advisor import IlpIndexAdvisor  # noqa: E402
from repro.parallel import shm  # noqa: E402
from repro.parallel.caches import CostCache  # noqa: E402
from repro.workloads.sdss import build_sdss_database, sdss_workload  # noqa: E402

E5_QUERIES = ("q01_box_search", "q15_spec_redshift_join", "q26_field_objects")
# The CI gate: warm full-workload advise vs. the seed. The target for
# this change is >=10x; the hard floor leaves headroom for slow runners.
SPEEDUP_FLOOR = 5.0


def load_seed_inum_model():
    """The InumModel class as of the repo's root (seed) commit.

    Executes the historical module source under a private name; its
    imports resolve against the current package, whose touched APIs
    (``Planner.plan``, catalog accessors) are backward compatible.
    """
    try:
        root = subprocess.run(
            ["git", "rev-list", "--max-parents=0", "HEAD"],
            capture_output=True, text=True, check=True, cwd=REPO_ROOT,
        ).stdout.strip()
        source = subprocess.run(
            ["git", "show", f"{root}:src/repro/inum/model.py"],
            capture_output=True, text=True, check=True, cwd=REPO_ROOT,
        ).stdout
    except (subprocess.CalledProcessError, OSError):
        return None
    module = types.ModuleType("seed_inum_model")
    module.__file__ = "<seed:src/repro/inum/model.py>"
    # dataclasses resolves field types through sys.modules[__module__].
    sys.modules[module.__name__] = module
    exec(compile(source, module.__file__, "exec"), module.__dict__)
    return module.InumModel


_MIN_BENEFIT = 1e-6


def _seed_benefit_matrix(workload, models, candidates):
    """The seed's benefit matrix: every (query, candidate) pair priced,
    including candidates on tables the query never touches."""
    benefits = {}
    for query in workload:
        model = models[query.name]
        base = model.base_cost
        for position, candidate in enumerate(candidates):
            with_index = model.estimate((candidate.index,))
            saving = (base - with_index) * query.weight
            if saving > _MIN_BENEFIT:
                benefits[(query.name, position)] = saving
    return benefits


def _seed_refine(workload, models, candidates, chosen, budget_pages,
                 max_rounds=6):
    """The seed's hill-climb: no configuration memo, full re-pricing."""

    def total_cost(positions):
        config = tuple(candidates[p].index for p in positions)
        return sum(
            models[q.name].estimate(config) * q.weight for q in workload
        )

    def fits(positions):
        return sum(candidates[p].size_pages for p in positions) <= budget_pages

    current = list(chosen)
    current_cost = total_cost(current)
    for _ in range(max_rounds):
        improved = False
        for position in list(current):
            trial = [p for p in current if p != position]
            cost = total_cost(trial)
            if cost < current_cost - 1e-9:
                current, current_cost = trial, cost
                improved = True
        for position in range(len(candidates)):
            if position in current:
                continue
            addition = current + [position]
            if fits(addition):
                cost = total_cost(addition)
                if cost < current_cost - 1e-9:
                    current, current_cost = addition, cost
                    improved = True
                    continue
            table = candidates[position].index.table_name
            for existing in list(current):
                if candidates[existing].index.table_name != table:
                    continue
                swap = [p for p in current if p != existing] + [position]
                if not fits(swap):
                    continue
                cost = total_cost(swap)
                if cost < current_cost - 1e-9:
                    current, current_cost = swap, cost
                    improved = True
                    break
        if not improved:
            break
    return sorted(current)


def seed_recommend(catalog, workload, seed_model_cls, budget_pages):
    """The seed's recommend() control flow with the seed's InumModel.

    Mirrors the original serial body: per-query bind + model build,
    full benefit matrix, ILP solve, memo-free refinement, and pricing
    (solve/pricing code is unchanged from the seed, so those stages are
    shared with the current advisor).
    """
    advisor = IlpIndexAdvisor(catalog)
    candidates = generate_candidates(catalog, workload)
    models = {
        query.name: seed_model_cls(catalog, query.bind(catalog))
        for query in workload
    }
    benefits = _seed_benefit_matrix(workload, models, candidates)
    maintenance = advisor._maintenance_costs(candidates, None)
    chosen = advisor._solve(
        workload, candidates, benefits, budget_pages, maintenance, None
    )
    chosen = _seed_refine(
        workload, models, candidates, chosen, budget_pages
    )
    return advisor._price_recommendation(
        workload, models, candidates, chosen, budget_pages, maintenance
    )


def best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def signature(result):
    return (
        tuple((ix.table_name, ix.columns) for ix in result.indexes),
        round(result.cost_before, 6),
        round(result.cost_after, 6),
        tuple(
            (q.name, round(q.cost_before, 6), round(q.cost_after, 6))
            for q in result.per_query
        ),
    )


def run_pytest_bench(paths, smoke):
    """Run benchmark files under pytest; returns status + duration."""
    if smoke:
        return {"status": "skipped (smoke)", "seconds": 0.0}
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    started = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q", *paths],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True,
    )
    seconds = time.perf_counter() - started
    tail = "\n".join(proc.stdout.strip().splitlines()[-3:])
    return {
        "status": "pass" if proc.returncode == 0 else "FAIL",
        "seconds": round(seconds, 2),
        "tail": tail,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small database, fewer repeats, skip the pytest suites",
    )
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_PR6.json"))
    args = parser.parse_args()

    photo_rows = 3000 if args.smoke else 12000
    # Budget scales with the data (index sizes grow with row count), so
    # knapsack tightness — and with it ILP solver behavior — is
    # comparable between smoke and full runs.
    budget_pages = photo_rows // 6
    repeats = 2 if args.smoke else 3

    print(f"building SDSS database (photo_rows={photo_rows}) ...")
    db = build_sdss_database(photo_rows=photo_rows, seed=42)
    workload = sdss_workload()
    e5 = type(workload)(
        queries=[workload.query(name) for name in E5_QUERIES],
        name="e5",
    )

    timings = {}
    results = {}

    seed_model_cls = load_seed_inum_model()
    if seed_model_cls is not None:
        timings["seed_serial_seconds"], results["seed"] = best_of(
            lambda: seed_recommend(db.catalog, e5, seed_model_cls, budget_pages),
            repeats,
        )
        seed_source = "git root commit"
    else:
        timings["seed_serial_seconds"], results["seed"] = best_of(
            lambda: IlpIndexAdvisor(db.catalog, workers=1, vectorize=False)
            .recommend(e5, budget_pages=budget_pages),
            repeats,
        )
        seed_source = "unavailable (git); used current scalar path"

    timings["serial_seconds"], results["serial"] = best_of(
        lambda: IlpIndexAdvisor(db.catalog, workers=1).recommend(
            e5, budget_pages=budget_pages
        ),
        repeats,
    )

    # The scalar fallback path must remain reachable and identical.
    timings["scalar_seconds"], results["scalar"] = best_of(
        lambda: IlpIndexAdvisor(db.catalog, workers=1, vectorize=False)
        .recommend(e5, budget_pages=budget_pages),
        1,
    )

    # The engine's production shape: one shared CostCache across calls
    # (what Parinda holds per session). The first call pays for every
    # optimizer invocation; later calls against the unchanged catalog
    # rehydrate INUM snapshots from the cache.
    shared = CostCache()
    started = time.perf_counter()
    results["parallel"] = IlpIndexAdvisor(
        db.catalog, workers=4, cost_cache=shared
    ).recommend(e5, budget_pages=budget_pages)
    timings["parallel_cold_seconds"] = time.perf_counter() - started
    timings["parallel_seconds"], results["parallel_warm"] = best_of(
        lambda: IlpIndexAdvisor(
            db.catalog, workers=4, cost_cache=shared
        ).recommend(e5, budget_pages=budget_pages),
        max(repeats, 2),
    )

    signatures = {name: signature(result) for name, result in results.items()}
    identical = len(set(signatures.values())) == 1
    if not identical:
        print("ERROR: recommendations differ between variants", file=sys.stderr)
        for name, sig in signatures.items():
            print(f"  {name}: {sig}", file=sys.stderr)

    # Full 30-query survey workload: the E5 slice exercises engine
    # correctness; the paper's interactive sessions run the whole SDSS
    # query mix, and the seed-vs-warm comparison here is the headline
    # this change is gated on.
    print(f"full SDSS workload ({len(list(workload))} queries) ...")
    # The seed and the warm path get the same repeat count: both
    # timings are best-of minima, so unequal repeats would bias the
    # ratio on noisy (shared-CPU) runners.
    full_repeats = 2 if args.smoke else 3
    if seed_model_cls is not None:
        timings["full_seed_seconds"], full_seed = best_of(
            lambda: seed_recommend(
                db.catalog, workload, seed_model_cls, budget_pages
            ),
            full_repeats,
        )
    else:
        timings["full_seed_seconds"], full_seed = best_of(
            lambda: IlpIndexAdvisor(db.catalog, workers=1, vectorize=False)
            .recommend(workload, budget_pages=budget_pages),
            full_repeats,
        )
    timings["full_serial_seconds"], full_serial = best_of(
        lambda: IlpIndexAdvisor(db.catalog, workers=1).recommend(
            workload, budget_pages=budget_pages
        ),
        max(full_repeats, 2),
    )
    timings["full_scalar_seconds"], full_scalar = best_of(
        lambda: IlpIndexAdvisor(db.catalog, workers=1, vectorize=False)
        .recommend(workload, budget_pages=budget_pages),
        1,
    )
    shared_full = CostCache()
    started = time.perf_counter()
    full_parallel = IlpIndexAdvisor(
        db.catalog, workers=4, cost_cache=shared_full
    ).recommend(workload, budget_pages=budget_pages)
    timings["full_parallel_cold_seconds"] = time.perf_counter() - started
    timings["full_warm_seconds"], full_warm = best_of(
        lambda: IlpIndexAdvisor(
            db.catalog, workers=4, cost_cache=shared_full
        ).recommend(workload, budget_pages=budget_pages),
        full_repeats,
    )
    full_identical = (
        signature(full_seed)
        == signature(full_serial)
        == signature(full_scalar)
        == signature(full_parallel)
        == signature(full_warm)
    )
    if not full_identical:
        print("ERROR: full-workload recommendations differ between seed, "
              "serial, scalar, and parallel runs", file=sys.stderr)

    leaked_segments = shm.active_segment_count()
    if leaked_segments:
        print(f"ERROR: {leaked_segments} shared-memory segments leaked",
              file=sys.stderr)
        shm.release_all()

    speedup = timings["seed_serial_seconds"] / timings["parallel_seconds"]
    full_speedup = timings["full_seed_seconds"] / timings["full_warm_seconds"]
    warm = results["parallel_warm"]
    phases = {k: round(v, 5) for k, v in full_warm.phase_seconds.items()}
    report = {
        "benchmark": "PR6 vectorized estimation core",
        "workload": list(E5_QUERIES),
        "budget_pages": budget_pages,
        "photo_rows": photo_rows,
        "seed_baseline": seed_source,
        "timings": {k: round(v, 5) for k, v in timings.items()},
        "speedup_parallel_vs_seed": round(speedup, 3),
        "speedup_serial_vs_seed": round(
            timings["seed_serial_seconds"] / timings["serial_seconds"], 3
        ),
        "recommendations_bit_identical": identical and full_identical,
        "scalar_path_identical": (
            signatures["scalar"] == signatures["serial"]
            and signature(full_scalar) == signature(full_serial)
        ),
        "recommendation": {
            "indexes": [
                f"{ix.table_name}({', '.join(ix.columns)})"
                for ix in warm.indexes
            ],
            "cost_before": warm.cost_before,
            "cost_after": warm.cost_after,
        },
        "cache": {
            "hits": warm.cache_hits,
            "misses": warm.cache_misses,
            "sections": warm.cache_stats,
        },
        "combinations_truncated": warm.combinations_truncated,
        "full_sdss": {
            "queries": len(list(workload)),
            "bit_identical": full_identical,
            "speedup_warm_vs_seed": round(full_speedup, 3),
            "speedup_warm_vs_serial": round(
                timings["full_serial_seconds"]
                / timings["full_warm_seconds"], 3
            ),
            "speedup_vectorized_vs_scalar": round(
                timings["full_scalar_seconds"]
                / timings["full_serial_seconds"], 3
            ),
            "phase_seconds": phases,
            "recommendation": {
                "indexes": [
                    f"{ix.table_name}({', '.join(ix.columns)})"
                    for ix in full_warm.indexes
                ],
                "cost_before": full_warm.cost_before,
                "cost_after": full_warm.cost_after,
            },
        },
        "shared_memory": {
            "transport_enabled": shm.transport_enabled(),
            "leaked_segments_after_runs": leaked_segments,
        },
        "suites": {
            "bench_a1_inum_cache": run_pytest_bench(
                ["benchmarks/bench_a1_inum_cache.py"], args.smoke
            ),
            "bench_e4_simulation_speed": run_pytest_bench(
                ["benchmarks/bench_e4_simulation_speed.py"], args.smoke
            ),
        },
        "environment": {
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "parallel_mode": os.environ.get("REPRO_PARALLEL_MODE", "auto"),
            "platform": platform.platform(),
        },
    }

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report["timings"], indent=2))
    print("phase breakdown (full SDSS, warm):")
    for phase, seconds in phases.items():
        print(f"  {phase:>16}: {seconds:.4f}s")
    print(f"speedup E5 (workers=4 warm vs seed): {report['speedup_parallel_vs_seed']}x")
    print(f"speedup full SDSS (warm vs seed): {round(full_speedup, 2)}x")
    print(f"bit-identical (E5): {identical}")
    print(f"bit-identical (full SDSS, incl. seed + scalar): {full_identical}")
    print(f"leaked shared-memory segments: {leaked_segments}")
    print(f"wrote {args.output}")

    if not identical or not full_identical or leaked_segments:
        return 1
    if full_speedup < SPEEDUP_FLOOR:
        print(
            f"ERROR: full-workload warm speedup {full_speedup:.2f}x below "
            f"the {SPEEDUP_FLOOR}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""E3 — Interactive scenario: what-if simulation accuracy (§4, Figure 3).

"She also has the option to compare the execution plan of the what-if
design with the execution plan of the same materialized physical
design. This way the accuracy of the physical design simulation is
verified." This bench performs that verification for a set of manual
designs: every what-if plan must match the materialized plan's shape,
and the costs must agree.
"""

from __future__ import annotations

from repro.bench.reporting import ResultTable
from repro.core.parinda import Parinda

# Manual designs a DBA might try: (name, [(table, columns), ...]).
DESIGNS = [
    ("sky position", [("photoobj", ("ra", "dec"))]),
    ("magnitude", [("photoobj", ("psfmag_r",))]),
    ("spec class+z", [("specobj", ("specclass", "z"))]),
    ("join keys", [("specobj", ("bestobjid",)), ("neighbors", ("objid",))]),
    ("covering", [("photoobj", ("obj_type", "psfmag_r", "run"))]),
]

PROBE_QUERIES = [
    "q01_box_search",
    "q03_bright_in_region",
    "q08_brightest",
    "q17_qso_spectra",
    "q23_pair_photometry",
    "q04_galaxy_count_by_run",
]


def test_e3_whatif_vs_materialized(fresh_sdss_db, workload, benchmark):
    db = fresh_sdss_db
    rows = []

    def run_all():
        for design_name, indexes in DESIGNS:
            parinda = Parinda(db)
            designer = parinda.interactive()
            for table, columns in indexes:
                designer.add_whatif_index(table, columns)
            for query_name in PROBE_QUERIES:
                comparison = designer.compare_with_materialized(query_name, workload)
                rows.append((design_name, comparison))
        return rows

    benchmark.pedantic(run_all, iterations=1, rounds=1)

    table = ResultTable(
        "E3: what-if vs. materialized (plan shape + cost agreement)",
        ["design", "query", "what-if cost", "materialized cost",
         "cost error %", "plans match"],
    )
    matches = 0
    for design_name, comparison in rows:
        table.add_row(
            design_name,
            comparison.query_name,
            comparison.whatif_cost,
            comparison.materialized_cost,
            f"{comparison.cost_error * 100:.3f}",
            "yes" if comparison.plans_match else "NO",
        )
        matches += comparison.plans_match
    table.emit()

    assert matches == len(rows), "every simulated plan must match materialized"
    assert all(c.cost_error < 1e-6 for _d, c in rows), (
        "what-if and materialized costs must agree exactly"
    )

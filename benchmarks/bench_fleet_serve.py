#!/usr/bin/env python
"""Closed-loop fleet serving benchmark: health gate and crash safety.

Drives :class:`~repro.fleet.serve.FleetController` against live SDSS
statement streams and gates the three behaviours the closed loop
promises (all hard gates, nonzero exit):

* **closed loop, stable**: a drifting stream re-tunes and rolls new
  designs out replica by replica, and the post-apply health gate never
  fires a rollback on designs that genuinely help — zero ``rolled-back``
  and ``frozen`` events across the whole run;
* **regression rollback**: an injected regressing design (dropping a
  replica's beneficial indexes) is confirmed by consecutive bad
  windows and rolled back **on that replica only** — the survivors
  keep their designs and rotation, and the freeze is recorded exactly
  once in the event log;
* **kill/resume convergence**: a run SIGKILLed mid-rollout (torn
  ``rollout.journal`` write) resumed with the same state file reaches
  the same terminal phase and per-replica designs as the fault-free
  run.

Everything lands in ``BENCH_FLEET_SERVE.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet_serve.py          # full
    PYTHONPATH=src python benchmarks/bench_fleet_serve.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.catalog.schema import Index, index_signature  # noqa: E402
from repro.core.parinda import Parinda  # noqa: E402
from repro.errors import FaultInjected  # noqa: E402
from repro.resilience.faults import FaultInjector  # noqa: E402
from repro.workloads.sdss import build_sdss_database  # noqa: E402

N_REPLICAS = 2
SEED = 42

# Covering indexes the stream templates genuinely benefit from (the
# prototype loop converges onto the photoobj one by itself); dropping
# them is the injected regression.
PHOTO_INDEX = Index(
    name="good_photo_psfmag",
    table_name="photoobj",
    columns=("psfmag_r", "objid"),
    hypothetical=True,
)
SPEC_INDEX = Index(
    name="good_spec_z",
    table_name="specobj",
    columns=("z", "specobjid"),
    hypothetical=True,
)


def photo_q(i: int) -> str:
    return f"SELECT objid FROM photoobj WHERE psfmag_r < {14 + i % 6}.5"


def spec_q(i: int) -> str:
    return f"SELECT specobjid FROM specobj WHERE z < 0.{1 + i % 5}"


def ext_q(i: int) -> str:
    return f"SELECT objid FROM photoobj WHERE extinction_r < 0.{1 + i % 4}"


def stable_stream(n: int):
    return [photo_q(i) if i % 2 else spec_q(i) for i in range(n)]


def drifting_stream(n: int):
    half = n // 2
    return [photo_q(i) if i % 2 else spec_q(i) for i in range(half)] + [
        ext_q(i) if i % 2 else spec_q(i) for i in range(half, n)
    ]


def make_fleet(photo_rows, state_file=None, fault_injector=None, **knobs):
    db = build_sdss_database(photo_rows=photo_rows, seed=SEED)
    parinda = Parinda(db)
    knobs.setdefault("window_size", 24)
    knobs.setdefault("check_interval", 12)
    knobs.setdefault("regression_windows", 2)
    knobs.setdefault("probation_windows", 3)
    knobs.setdefault("max_rounds", 3)
    return parinda.fleet_serve(
        n_replicas=N_REPLICAS,
        budget_bytes=4 << 20,
        state_file=state_file,
        fault_injector=fault_injector,
        **knobs,
    )


def designs_of(fleet):
    return [
        sorted(index_signature(ix) for ix in rt.design)
        for rt in fleet.replicas
    ]


def terminal_of(fleet):
    return {"phase": fleet.phase, "designs": designs_of(fleet)}


def leg_closed_loop(photo_rows, stream_len):
    """Drift -> re-tune -> rollout on a live stream; no false rollbacks."""
    fleet = make_fleet(photo_rows, warmup=24)
    started = time.perf_counter()
    for sql in drifting_stream(stream_len):
        fleet.observe(sql)
    seconds = time.perf_counter() - started
    counts = fleet.event_counts
    return {
        "statements": stream_len,
        "seconds": round(seconds, 3),
        "phase": fleet.phase,
        "event_counts": dict(counts),
        "designs": [
            [f"{t}({', '.join(c)})" for t, c in d] for d in designs_of(fleet)
        ],
        "gates": {
            "retuned": counts.get("re-tuned", 0) >= 1,
            "rolled_out": counts.get("rollout-finished", 0) >= 1,
            "validated": counts.get("validated", 0) >= 1,
            "no_rollback": counts.get("rolled-back", 0) == 0
            and counts.get("frozen", 0) == 0
            and fleet.phase == "serving",
        },
    }


def leg_regression_rollback(photo_rows, stream_len):
    """A regressing design rolls back its replica only and freezes."""
    # warmup above the stream length: drift never interferes, every
    # rollout below is deliberate.
    fleet = make_fleet(photo_rows, warmup=10_000, regression_tolerance=0.05)
    good = [(PHOTO_INDEX, SPEC_INDEX)] * N_REPLICAS
    for sql in stable_stream(stream_len // 2):
        fleet.observe(sql)
    fleet.rollout(good)
    for sql in stable_stream(stream_len):
        fleet.observe(sql)
    counts_before = dict(fleet.event_counts)
    stable_clean = (
        counts_before.get("rolled-back", 0) == 0
        and counts_before.get("frozen", 0) == 0
    )
    # The injection: strip the replica that routing handed the photoobj
    # template to (the one whose design actually matters) of its
    # beneficial indexes.
    victim_id = max(
        range(N_REPLICAS),
        key=lambda rid: sum(
            weight
            for template, weight in fleet.replicas[rid]
            .monitor.window_counts.items()
            if "photoobj" in template
        ),
    )
    bad = list(good)
    bad[victim_id] = ()
    fleet.rollout(bad)
    for sql in stable_stream(stream_len):
        fleet.observe(sql)
    counts = fleet.event_counts
    victim = fleet.replicas[victim_id]
    survivor = fleet.replicas[1 - victim_id]
    good_sigs = sorted(index_signature(ix) for ix in good[0])
    return {
        "statements": 2 * stream_len + stream_len // 2,
        "event_counts": dict(counts),
        "victim_replica": victim_id,
        "victim_status": victim.status,
        "survivor_status": survivor.status,
        "gates": {
            "stable_design_never_rolls_back": stable_clean,
            "frozen_once": fleet.frozen and counts.get("frozen", 0) == 1,
            "victim_only_rolled_back": counts.get("rolled-back", 0) == 1
            and victim.status == "rolled-back",
            "victim_restored": sorted(
                index_signature(ix) for ix in victim.design
            )
            == good_sigs,
            "survivor_keeps_design": survivor.status == "serving"
            and sorted(index_signature(ix) for ix in survivor.design)
            == good_sigs,
        },
    }


def leg_kill_resume(photo_rows, stream_len, workdir):
    """Torn rollout-journal write mid-run; resume converges."""
    stream = drifting_stream(stream_len)

    def drive(state_file, injector=None):
        fleet = make_fleet(
            photo_rows, state_file=state_file, fault_injector=injector,
            warmup=24,
        )
        resume_from = fleet.position if fleet.resumed else 0
        killed = None
        for position, sql in enumerate(stream, start=1):
            if position <= resume_from:
                continue
            try:
                fleet.observe(sql)
            except FaultInjected as exc:
                killed = str(exc)
                break
        return fleet, killed

    clean_state = str(Path(workdir) / "clean.state")
    clean, _ = drive(clean_state, FaultInjector())
    expected = terminal_of(clean)

    kill_state = str(Path(workdir) / "kill.state")
    _, killed = drive(kill_state, FaultInjector.from_spec("rollout.journal:2"))
    resumed, _ = drive(kill_state)
    observed = terminal_of(resumed)
    return {
        "statements": stream_len,
        "killed_at": killed,
        "expected": expected,
        "resumed": observed,
        "gates": {
            "kill_fired_mid_rollout": killed is not None,
            "resume_converges": observed == expected,
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small database and short streams (CI-sized)",
    )
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_FLEET_SERVE.json")
    )
    args = parser.parse_args()

    photo_rows = 800 if args.smoke else 2000
    stream_len = 192 if args.smoke else 384

    print(f"closed loop on a drifting stream (photo_rows={photo_rows}) ...")
    closed_loop = leg_closed_loop(photo_rows, stream_len)
    print(
        f"  {closed_loop['statements']} statements in "
        f"{closed_loop['seconds']}s; events {closed_loop['event_counts']}"
    )

    print("injected regression (one replica loses its design) ...")
    regression = leg_regression_rollback(photo_rows, stream_len // 2)
    print(
        f"  victim replica {regression['victim_replica']} "
        f"{regression['victim_status']}, survivor "
        f"{regression['survivor_status']}; events "
        f"{regression['event_counts']}"
    )

    print("kill/resume at a torn rollout-journal write ...")
    with tempfile.TemporaryDirectory() as workdir:
        kill_resume = leg_kill_resume(photo_rows, stream_len, workdir)
    print(f"  killed: {kill_resume['killed_at']}")
    print(f"  resumed terminal matches clean: "
          f"{kill_resume['gates']['resume_converges']}")

    legs = {
        "closed_loop": closed_loop,
        "regression_rollback": regression,
        "kill_resume": kill_resume,
    }
    report = {
        "benchmark": "closed-loop fleet serving",
        "photo_rows": photo_rows,
        "n_replicas": N_REPLICAS,
        "seed": SEED,
        **legs,
        "environment": {
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
        },
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    failed = False
    for leg_name, leg in legs.items():
        for gate, passed in leg["gates"].items():
            if not passed:
                print(f"ERROR: {leg_name}.{gate} failed", file=sys.stderr)
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

"""A1 (ablation) — INUM cache size: accuracy vs. optimizer calls.

INUM's cache holds one plan per interesting-order combination (times
the nested-loop toggle). This ablation caps the number of combinations
and measures what it costs: fewer cached plans mean fewer optimizer
calls up front but a coarser model. The design point the paper inherits
from the INUM work — cache *all* order combinations — is the rightmost
column.
"""

from __future__ import annotations

import random

from repro.advisor.candidates import generate_candidates
from repro.bench.reporting import ResultTable
from repro.inum.model import InumModel

QUERY = "q29_spec_field_quality"  # 3-way join: the richest order space
NUM_CONFIGS = 120


def test_a1_cache_size_ablation(sdss_db, workload, benchmark):
    db = sdss_db
    rng = random.Random(9)
    query = workload.query(QUERY)
    bound = query.bind(db.catalog)
    candidates = [
        c.index
        for c in generate_candidates(db.catalog, workload)
        if c.index.table_name in {e.table.name for e in bound.rels}
    ]
    configs = [
        tuple(rng.sample(candidates, rng.randint(0, 3))) for _ in range(NUM_CONFIGS)
    ]

    rows = []

    def run_all():
        reference = InumModel(db.catalog, bound, max_combinations=64)
        truths = [reference.optimizer_cost(cfg) for cfg in configs]
        for cap in (1, 2, 4, 8, 16, 64):
            model = InumModel(db.catalog, bound, max_combinations=cap)
            errors = []
            for cfg, truth in zip(configs, truths):
                est = model.estimate(cfg)
                if truth > 0:
                    errors.append((est - truth) / truth)
            rows.append(
                (
                    cap,
                    model.stats.cache_entries,
                    model.stats.optimizer_calls,
                    max(errors) * 100,
                    sum(errors) / len(errors) * 100,
                )
            )
        return rows

    benchmark.pedantic(run_all, iterations=1, rounds=1)

    table = ResultTable(
        f"A1: INUM cache-size ablation on {QUERY} ({NUM_CONFIGS} configs)",
        ["max combos", "cache entries", "optimizer calls",
         "max error %", "mean error %"],
    )
    for cap, entries, calls, max_err, mean_err in rows:
        table.add_row(cap, entries, calls, f"{max_err:.2f}", f"{mean_err:.2f}")
    table.emit()

    # INUM's estimate is an over-approximation when orders are missing;
    # the full cache must be (near-)exact, and error must not grow as
    # the cache grows.
    errors = [r[3] for r in rows]
    assert errors[-1] <= 1.0, "full cache should be near-exact"
    assert errors[-1] <= errors[0] + 1e-9, "more cache must never hurt"


def test_a1_nl_toggle_ablation(sdss_db, workload, benchmark):
    """Drop the What-If Join component (cache only nestloop-on plans)
    and measure the worst-case estimation error it causes."""
    import itertools

    db = sdss_db
    query = workload.query("q23_pair_photometry")
    bound = query.bind(db.catalog)
    candidates = [
        c.index
        for c in generate_candidates(db.catalog, workload)
        if c.index.table_name in ("photoobj", "neighbors")
    ][:8]

    result = {}

    def run_all():
        model = InumModel(db.catalog, bound)
        worst_with = 0.0
        for k in (0, 1, 2):
            for cfg in itertools.combinations(candidates, k):
                truth = model.optimizer_cost(cfg)
                est = model.estimate(cfg)
                worst_with = max(worst_with, abs(est - truth) / truth)
        only_nl_entries = [e for e in model.entries if e.nestloop_enabled]
        assert only_nl_entries
        result["with"] = worst_with
        result["entries_both"] = len(model.entries)
        result["entries_nl_only"] = len(only_nl_entries)
        return result

    benchmark.pedantic(run_all, iterations=1, rounds=1)

    table = ResultTable(
        "A1b: nested-loop toggle (What-If Join) contribution",
        ["variant", "cache entries", "worst estimation error %"],
    )
    table.add_row("both NL plans (paper)", result["entries_both"],
                  f"{result['with'] * 100:.2f}")
    table.emit()
    assert result["with"] < 0.05

"""A3 (extension) — update-cost constraints (§3.4).

The ILP "contains ... other user-supplied constraints, such as
constraints on the total size of the design features, and their update
costs". This bench sweeps the update rate of the write-hot fact table
and shows the advisor shedding indexes as maintenance eats their
benefit — the behaviour that distinguishes a constraint-aware ILP from
benefit-only selection.
"""

from __future__ import annotations

from repro.advisor.ilp_advisor import IlpIndexAdvisor
from repro.bench.reporting import ResultTable

RATES = (0.0, 1.0, 5.0, 25.0, 125.0, 625.0)


def test_a3_update_rate_sweep(sdss_db, workload, benchmark):
    db = sdss_db
    budget = 600
    rows = []

    def run_all():
        for rate in RATES:
            result = IlpIndexAdvisor(db.catalog).recommend(
                workload,
                budget_pages=budget,
                update_rates={"photoobj": rate},
            )
            photo = sum(1 for i in result.indexes if i.table_name == "photoobj")
            other = len(result.indexes) - photo
            rows.append(
                (rate, photo, other, result.maintenance_cost, result.cost_after)
            )
        return rows

    benchmark.pedantic(run_all, iterations=1, rounds=1)

    table = ResultTable(
        f"A3: indexes chosen vs photoobj update rate (budget={budget} pages)",
        ["update rate", "photoobj indexes", "other indexes",
         "maintenance cost", "total cost after"],
    )
    for rate, photo, other, maint, after in rows:
        table.add_row(rate, photo, other, maint, after)
    table.emit()

    photo_counts = [r[1] for r in rows]
    assert photo_counts[0] > 0, "read-only baseline should index photoobj"
    assert photo_counts[-1] == 0, "extreme write rate must drop them all"
    assert all(a >= b for a, b in zip(photo_counts, photo_counts[1:])), (
        "photoobj index count must fall monotonically with the update rate"
    )
    others = [r[2] for r in rows]
    assert others[-1] >= others[0], "read-only tables keep their indexes"

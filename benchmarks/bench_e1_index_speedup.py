"""E1 — "speedups ranging from 2x to 10x" (§1, §3.4).

Regenerates the paper's headline claim: ILP-suggested indexes speed up
the analytical workload, swept over storage budgets expressed as
fractions of the data size. The paper reports 2–10x on SDSS; the shape
to reproduce is a speedup that grows with budget and lands in the
single-digit-multiple range, with individual queries far above it.
"""

from __future__ import annotations

from repro.advisor.ilp_advisor import IlpIndexAdvisor
from repro.bench.reporting import ResultTable


def _data_pages(db) -> int:
    return sum(
        db.catalog.statistics(t).table.page_count for t in db.catalog.table_names
    )


def test_e1_speedup_vs_budget(sdss_db, workload, benchmark):
    db = sdss_db
    data_pages = _data_pages(db)
    table = ResultTable(
        "E1: workload speedup vs. index storage budget (paper: 2x-10x)",
        ["budget (xdata)", "budget pages", "chosen", "size pages",
         "cost before", "cost after", "speedup", "max query speedup"],
    )

    results = {}

    def run_all():
        for fraction in (0.25, 0.5, 1.0, 2.0):
            advisor = IlpIndexAdvisor(db.catalog)
            budget = max(1, int(data_pages * fraction))
            results[fraction] = advisor.recommend(workload, budget)
        return results

    benchmark.pedantic(run_all, iterations=1, rounds=1)

    for fraction, result in sorted(results.items()):
        best_query = max(result.per_query, key=lambda q: q.speedup)
        table.add_row(
            f"{fraction:.2f}",
            result.budget_pages,
            len(result.indexes),
            result.size_pages,
            result.cost_before,
            result.cost_after,
            f"{result.speedup:.2f}x",
            f"{best_query.speedup:.1f}x ({best_query.name})",
        )
    table.emit()

    full = results[2.0]
    assert full.speedup > 1.5, "index advisor should speed the workload up"
    assert any(q.speedup >= 2.0 for q in full.per_query), (
        "some queries should see the paper's 2x-10x range"
    )

"""E9 — Optimizer hooks (§3.1, Figure 1).

PARINDA works by replacing PostgreSQL's optimizer hooks at runtime.
Two properties make that viable and are measured here: (a) correctness —
an installed hook that injects nothing leaves every plan and cost
bit-identical to the stock optimizer; (b) overhead — planning through
the hook chain (including a WhatIfSession with no hypothetical objects)
costs almost nothing.
"""

from __future__ import annotations

import time

from repro.bench.reporting import ResultTable
from repro.optimizer.config import PlannerConfig, default_relation_info
from repro.optimizer.planner import Planner
from repro.optimizer.plans import plan_signature
from repro.whatif.session import WhatIfSession


def test_e9_hook_transparency_and_overhead(sdss_db, workload, benchmark):
    db = sdss_db

    stock = Planner(db.catalog)

    def passthrough_hook(config, catalog, table_name):
        return default_relation_info(config, catalog, table_name)

    hooked = Planner(db.catalog, PlannerConfig(relation_info_hook=passthrough_hook))
    session = WhatIfSession(db.catalog)  # installed what-if hook, empty

    measurements = {}

    def run_all():
        bound = [q.bind(db.catalog) for q in workload]
        for name, planner in (
            ("stock", stock),
            ("passthrough hook", hooked),
            ("empty what-if session", session.planner()),
        ):
            start = time.perf_counter()
            plans = [planner.plan(b) for b in bound]
            elapsed = time.perf_counter() - start
            measurements[name] = (elapsed, plans)
        return measurements

    benchmark.pedantic(run_all, iterations=1, rounds=1)

    base_elapsed, base_plans = measurements["stock"]
    table = ResultTable(
        "E9: hook overhead and transparency (30-query workload)",
        ["planner", "plan time (ms)", "overhead %", "identical plans",
         "identical costs"],
    )
    for name, (elapsed, plans) in measurements.items():
        same_shape = sum(
            plan_signature(a) == plan_signature(b)
            for a, b in zip(plans, base_plans)
        )
        same_cost = sum(
            abs(a.total_cost - b.total_cost) < 1e-9
            for a, b in zip(plans, base_plans)
        )
        overhead = (elapsed - base_elapsed) / base_elapsed * 100
        table.add_row(
            name,
            elapsed * 1000,
            f"{overhead:+.1f}",
            f"{same_shape}/{len(plans)}",
            f"{same_cost}/{len(plans)}",
        )
    table.emit()

    for name, (_elapsed, plans) in measurements.items():
        for a, b in zip(plans, base_plans):
            assert plan_signature(a) == plan_signature(b), name
            assert abs(a.total_cost - b.total_cost) < 1e-9, name

#!/usr/bin/env python
"""Pluggable fenced state-store benchmark: host loss, fencing, retry.

Gates the three promises the store layer makes (all hard gates,
nonzero exit):

* **host-loss convergence**: a ``fleet --serve`` loop journaling into a
  :class:`~repro.resilience.store.DatabaseStateStore` is killed at a
  torn journal write; the resume runs on a **fresh host** — new
  database objects, a new store instance, zero local state files
  besides the store's dsn — and still reaches the same terminal phase
  and per-replica designs as an uninterrupted run;
* **stale-lease rejection**: after a failover bumps the lease epoch,
  the superseded daemon's next journal write raises
  ``StaleLeaseError`` and the new owner's journal is untouched;
* **transient retry**: a single injected ``store.write`` blip is
  absorbed by the bounded retry ladder, while a persistent fault
  exhausts exactly ``retries + 1`` attempts and propagates.

Everything lands in ``BENCH_STORE.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_store.py          # full
    PYTHONPATH=src python benchmarks/bench_store.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.catalog.schema import index_signature  # noqa: E402
from repro.core.parinda import Parinda  # noqa: E402
from repro.errors import FaultInjected, StaleLeaseError  # noqa: E402
from repro.resilience.faults import FaultInjector  # noqa: E402
from repro.resilience.state import backup_path  # noqa: E402
from repro.resilience.store import (  # noqa: E402
    DatabaseStateStore,
    FileStateStore,
)
from repro.workloads.sdss import build_sdss_database  # noqa: E402

N_REPLICAS = 2
SEED = 42


def photo_q(i: int) -> str:
    return f"SELECT objid FROM photoobj WHERE psfmag_r < {14 + i % 6}.5"


def spec_q(i: int) -> str:
    return f"SELECT specobjid FROM specobj WHERE z < 0.{1 + i % 5}"


def ext_q(i: int) -> str:
    return f"SELECT objid FROM photoobj WHERE extinction_r < 0.{1 + i % 4}"


def drifting_stream(n: int):
    half = n // 2
    return [photo_q(i) if i % 2 else spec_q(i) for i in range(half)] + [
        ext_q(i) if i % 2 else spec_q(i) for i in range(half, n)
    ]


def terminal_of(fleet):
    return {
        "phase": fleet.phase,
        "designs": [
            sorted(index_signature(ix) for ix in rt.design)
            for rt in fleet.replicas
        ],
    }


def leg_host_loss(photo_rows, stream_len, workdir):
    """Kill mid-journal, lose the host, resume from the dsn alone."""
    stream = drifting_stream(stream_len)

    def drive(dsn, injector=None):
        db = build_sdss_database(photo_rows=photo_rows, seed=SEED)
        store = DatabaseStateStore(db, dsn, fault_injector=injector)
        parinda = Parinda(db)
        fleet = parinda.fleet_serve(
            n_replicas=N_REPLICAS,
            budget_bytes=4 << 20,
            state_store=store,
            fault_injector=injector,
            window_size=24,
            check_interval=12,
            warmup=24,
            regression_windows=2,
            probation_windows=3,
            max_rounds=3,
        )
        resume_from = fleet.position if fleet.resumed else 0
        killed = None
        for position, sql in enumerate(stream, start=1):
            if position <= resume_from:
                continue
            try:
                fleet.observe(sql)
            except FaultInjected as exc:
                killed = str(exc)
                break
        return fleet, killed

    clean_dir = Path(workdir) / "clean"
    clean_dir.mkdir()
    clean, _ = drive(str(clean_dir / "dbstate.json"))
    expected = terminal_of(clean)

    kill_dir = Path(workdir) / "kill"
    kill_dir.mkdir()
    dsn = str(kill_dir / "dbstate.json")
    _, killed = drive(dsn, FaultInjector.from_spec("rollout.journal:2"))
    # Host loss, not process loss: everything local except the store's
    # dsn pair disappears with the machine.
    survivors = {os.path.basename(dsn), os.path.basename(backup_path(dsn))}
    strays = sorted(set(os.listdir(kill_dir)) - survivors)
    started = time.perf_counter()
    resumed, _ = drive(dsn)
    resume_seconds = time.perf_counter() - started
    observed = terminal_of(resumed)
    return {
        "statements": stream_len,
        "killed_at": killed,
        "resume_seconds": round(resume_seconds, 3),
        "expected": expected,
        "resumed": observed,
        "stray_local_files": strays,
        "gates": {
            "kill_fired_mid_rollout": killed is not None,
            "no_local_state_besides_dsn": not strays,
            "fresh_host_resume_converges": observed == expected,
        },
    }


def leg_stale_lease(photo_rows, workdir):
    """A superseded daemon cannot write past a failover."""
    dsn = str(Path(workdir) / "dbstate.json")
    old_db = build_sdss_database(photo_rows=photo_rows, seed=SEED)
    old = DatabaseStateStore(old_db, dsn)
    old.acquire(owner="old-daemon")
    old.write("", {"owner": "old", "generation": 1})
    new_db = build_sdss_database(photo_rows=photo_rows, seed=SEED)
    new = DatabaseStateStore(new_db, dsn)
    new_epoch = new.acquire(owner="new-daemon")
    new.write("", {"owner": "new", "generation": 2})
    rejected = False
    try:
        old.write("", {"owner": "old", "generation": 3})
    except StaleLeaseError:
        rejected = True
    surviving, _source = DatabaseStateStore(
        build_sdss_database(photo_rows=photo_rows, seed=SEED), dsn
    ).read("")
    return {
        "old_epoch": old.epoch,
        "new_epoch": new_epoch,
        "surviving_state": surviving,
        "gates": {
            "epoch_bumped": new_epoch == (old.epoch or 0) + 1,
            "stale_writer_rejected": rejected,
            "new_owner_journal_intact": surviving.get("owner") == "new",
        },
    }


def leg_transient_retry(workdir):
    """One blip is absorbed; a persistent fault exhausts the budget."""
    base = str(Path(workdir) / "STATE")
    blip = FaultInjector.from_spec("store.write:1")
    store = FileStateStore(base, fault_injector=blip, retries=2, backoff=0.0)
    absorbed = True
    try:
        store.write("", {"generation": 1})
    except FaultInjected:
        absorbed = False

    hard = FaultInjector.from_spec("store.write:*")
    broken = FileStateStore(
        str(Path(workdir) / "BROKEN"),
        fault_injector=hard,
        retries=2,
        backoff=0.0,
    )
    exhausted = False
    try:
        broken.write("", {"generation": 1})
    except FaultInjected:
        exhausted = True
    return {
        "blip_attempts": blip.fired("store.write") + 1,
        "exhausted_attempts": hard.fired("store.write"),
        "gates": {
            "single_blip_absorbed": absorbed
            and blip.fired("store.write") == 1,
            "budget_is_retries_plus_one": exhausted
            and hard.fired("store.write") == 3,
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small database and short streams (CI-sized)",
    )
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_STORE.json"))
    args = parser.parse_args()

    photo_rows = 800 if args.smoke else 2000
    stream_len = 192 if args.smoke else 384

    print(f"host-loss convergence (photo_rows={photo_rows}) ...")
    with tempfile.TemporaryDirectory() as workdir:
        host_loss = leg_host_loss(photo_rows, stream_len, workdir)
    print(f"  killed: {host_loss['killed_at']}")
    print(
        f"  fresh-host resume converges: "
        f"{host_loss['gates']['fresh_host_resume_converges']} "
        f"({host_loss['resume_seconds']}s)"
    )

    print("stale-lease rejection after failover ...")
    with tempfile.TemporaryDirectory() as workdir:
        stale = leg_stale_lease(photo_rows, workdir)
    print(
        f"  epochs {stale['old_epoch']} -> {stale['new_epoch']}; "
        f"stale writer rejected: {stale['gates']['stale_writer_rejected']}"
    )

    print("transient-retry ladder ...")
    with tempfile.TemporaryDirectory() as workdir:
        retry = leg_transient_retry(workdir)
    print(
        f"  blip absorbed in {retry['blip_attempts']} attempts; "
        f"persistent fault exhausted after {retry['exhausted_attempts']}"
    )

    legs = {
        "host_loss": host_loss,
        "stale_lease": stale,
        "transient_retry": retry,
    }
    report = {
        "benchmark": "pluggable fenced state store",
        "photo_rows": photo_rows,
        "n_replicas": N_REPLICAS,
        "seed": SEED,
        **legs,
        "environment": {
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
        },
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    failed = False
    for leg_name, leg in legs.items():
        for gate, passed in leg["gates"].items():
            if not passed:
                print(f"ERROR: {leg_name}.{gate} failed", file=sys.stderr)
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

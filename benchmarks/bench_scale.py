#!/usr/bin/env python
"""Scale benchmark: CoPhy-style advising over 10k-statement streams.

The scale mode's promise is that advisor cost tracks query *shapes*,
not raw statement counts: ``compress_statements`` folds the stream onto
canonical templates (O(stream) tokenizer work), and the ILP then only
sees one representative per template with an occurrence-count weight.
This benchmark measures end-to-end advise time (fold + prune + solve)
over SDSS-derived streams of 100, 1 000, and 10 000 statements and fits
the scaling exponent on log-log axes.

Three gates, all hard (nonzero exit):

* **subquadratic**: the fitted exponent from 100 to 10k statements is
  below 2.0 (in practice the fold dominates and it sits near 1);
* **deadline**: the 10k-statement advise, run under the solver
  deadline, finishes with status ``optimal`` or ``feasible`` — never
  an error, never a blown cap;
* **bit identity**: advising the compressed stream and advising its
  weight-equivalent expanded workload produce byte-identical
  recommendations (every float compared as IEEE-754 bytes).

Everything lands in ``BENCH_SCALE.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py          # full
    PYTHONPATH=src python benchmarks/bench_scale.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import struct
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.advisor.compress import compress_statements  # noqa: E402
from repro.advisor.ilp_advisor import IlpIndexAdvisor  # noqa: E402
from repro.online.monitor import render_statement  # noqa: E402
from repro.sql.tokenizer import Token, TokenType, tokenize  # noqa: E402
from repro.workloads.sdss import build_sdss_database, sdss_workload  # noqa: E402
from repro.workloads.workload import Query, Workload  # noqa: E402

SIZES = (100, 1_000, 10_000)
BUDGET_PAGES = 400
SOLVER_DEADLINE = 20.0
EXPONENT_GATE = 2.0
REPEATS = 3
UPDATE_EVERY = 7
UPDATE_SQL = "UPDATE photoobj SET status = {status} WHERE objid = {objid}"


def vary(sql: str, salt: int) -> str:
    """A literal-perturbed instance of ``sql`` (same template)."""
    out = []
    occurrence = 0
    for token in tokenize(sql):
        if token.type is TokenType.NUMBER and "." in token.value:
            occurrence += 1
            nudged = float(token.value) + (salt * 31 + occurrence) * 1e-7
            token = Token(TokenType.NUMBER, repr(nudged), token.position)
        out.append(token)
    return render_statement(out)


def build_stream(size: int) -> list[str]:
    """A deterministic ``size``-statement stream cycling the full SDSS
    survey with literal-perturbed instances plus periodic UPDATEs."""
    shapes = [q.sql.strip() for q in sdss_workload()]
    statements: list[str] = []
    salt = 0
    while len(statements) < size:
        statements.append(vary(shapes[salt % len(shapes)], salt))
        if len(statements) % UPDATE_EVERY == 0 and len(statements) < size:
            statements.append(
                UPDATE_SQL.format(status=salt % 3, objid=1000 + salt)
            )
        salt += 1
    return statements[:size]


def expand(stream: list[str]) -> tuple[Workload, dict[str, float]]:
    """The weight-1 expansion of the stream's SELECTs plus per-table
    DML rates (the compressor's own aggregation, done by hand)."""
    queries = []
    rates: dict[str, float] = {}
    for i, sql in enumerate(stream):
        head = sql.split(None, 1)[0].lower()
        if head == "select":
            queries.append(Query(name=f"s{i}", sql=sql))
        elif head in ("insert", "update", "delete"):
            rates[sql.split()[1].lower()] = (
                rates.get(sql.split()[1].lower(), 0.0) + 1.0
            )
    return Workload(queries=queries, name="expanded"), rates


def packed(result) -> tuple:
    """Every float and structural field of a recommendation, floats as
    exact IEEE-754 bytes."""
    floats = [result.cost_before, result.cost_after, result.maintenance_cost]
    for q in result.per_query:
        floats.extend([q.cost_before, q.cost_after])
    return (
        b"".join(struct.pack("<d", value) for value in floats),
        [(ix.table_name, ix.columns) for ix in result.indexes],
        [(q.name, tuple(q.indexes_used)) for q in result.per_query],
        result.size_pages,
    )


def advise(catalog, stream, *, deadline=None):
    """Fold + advise one stream; returns (result, cres, seconds)."""
    advisor = IlpIndexAdvisor(
        catalog, compress=True, solver_deadline=deadline
    )
    started = time.perf_counter()
    cres = compress_statements(stream)
    result = advisor.recommend(
        cres.workload,
        BUDGET_PAGES,
        update_rates=cres.workload.update_rates or None,
    )
    return result, cres, time.perf_counter() - started


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small database and fewer timing repeats (CI-sized)",
    )
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_SCALE.json"))
    args = parser.parse_args()

    photo_rows = 2000 if args.smoke else 8000
    repeats = 1 if args.smoke else REPEATS

    print(f"building SDSS database (photo_rows={photo_rows}) ...")
    db = build_sdss_database(photo_rows=photo_rows, seed=42)

    points = []
    last = None
    for size in SIZES:
        stream = build_stream(size)
        best = None
        for _ in range(repeats):
            result, cres, seconds = advise(
                db.catalog, stream, deadline=SOLVER_DEADLINE
            )
            best = seconds if best is None else min(best, seconds)
        last = result
        points.append(
            {
                "statements": size,
                "templates": cres.templates,
                "dml_statements": cres.dml_statements,
                "advise_seconds": round(best, 4),
                "solver_status": result.solver_status,
                "candidates_pruned": result.candidates_pruned,
                "solver_nodes": result.solver_nodes,
            }
        )
        print(
            f"  {size:>6} statements -> {cres.templates} templates, "
            f"{best:.3f}s ({result.solver_status})"
        )

    logs = np.log([p["statements"] for p in points])
    logt = np.log([max(p["advise_seconds"], 1e-4) for p in points])
    exponent = float(np.polyfit(logs, logt, 1)[0])
    subquadratic = exponent < EXPONENT_GATE

    deadline_ok = last is not None and last.solver_status in (
        "optimal",
        "feasible",
    )

    # Bit-identity gate at the mid size: compressed stream vs its
    # weight-equivalent expansion, compared byte-for-byte.
    stream = build_stream(SIZES[1])
    cres = compress_statements(stream)
    expanded, rates = expand(stream)
    advisor = IlpIndexAdvisor(db.catalog, compress=True)
    r_compressed = advisor.recommend(
        cres.workload, BUDGET_PAGES, update_rates=rates or None
    )
    r_expanded = advisor.recommend(
        expanded, BUDGET_PAGES, update_rates=rates or None
    )
    bit_identical = packed(r_compressed) == packed(r_expanded)

    report = {
        "benchmark": "scale advising over SDSS statement streams",
        "photo_rows": photo_rows,
        "budget_pages": BUDGET_PAGES,
        "solver_deadline_seconds": SOLVER_DEADLINE,
        "points": points,
        "scaling_exponent": round(exponent, 4),
        "exponent_gate": EXPONENT_GATE,
        "subquadratic": subquadratic,
        "deadline_status_ok": deadline_ok,
        "bit_identical": bit_identical,
        "environment": {
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
        },
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    print(f"scaling exponent: {exponent:.3f} (gate < {EXPONENT_GATE})")
    print(f"10k solver status: {last.solver_status}")
    print(f"bit identical: {bit_identical}")
    print(f"wrote {args.output}")

    failed = False
    if not subquadratic:
        print(
            f"ERROR: fitted scaling exponent {exponent:.3f} is not below "
            f"{EXPONENT_GATE}",
            file=sys.stderr,
        )
        failed = True
    if not deadline_ok:
        print(
            "ERROR: 10k-statement advise under the solver deadline did not "
            f"finish optimal or feasible (got {last.solver_status!r})",
            file=sys.stderr,
        )
        failed = True
    if not bit_identical:
        print(
            "ERROR: compressed and expanded advising disagree byte-for-byte",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

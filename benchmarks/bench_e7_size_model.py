"""E7 — Equation 1: what-if index size model accuracy (§3.2).

The paper's what-if indexes are sized by Equation 1 (per-column width +
alignment, row overhead o=24, page size B=8192, leaf pages only). The
related-work section faults Monteiro et al. for assuming zero index
size, so the size model's accuracy matters. This bench builds real
B-Trees for 1- to 4-column indexes over the survey tables and compares
actual leaf page counts against the Equation 1 estimate.
"""

from __future__ import annotations

from repro.bench.reporting import ResultTable
from repro.catalog.schema import Index
from repro.catalog.sizing import estimate_index_pages

INDEXES = [
    ("photoobj", ("objid",)),
    ("photoobj", ("ra",)),
    ("photoobj", ("ra", "dec")),
    ("photoobj", ("run", "camcol", "field_id")),
    ("photoobj", ("obj_type", "psfmag_r", "ra", "dec")),
    ("specobj", ("specclass",)),          # varlena key: measured avg width
    ("specobj", ("specclass", "z")),
    ("specobj", ("plate", "mjd", "fiberid")),
    ("neighbors", ("objid", "neighborobjid")),
    ("field", ("quality", "seeing")),
]


def test_e7_equation1_accuracy(fresh_sdss_db, benchmark):
    db = fresh_sdss_db
    rows = []

    def run_all():
        for counter, (table_name, columns) in enumerate(INDEXES):
            table = db.catalog.table(table_name)
            stats = db.catalog.statistics(table_name)
            estimated = estimate_index_pages(
                table,
                Index(f"e7_h{counter}", table_name, columns, hypothetical=True),
                stats.table.row_count,
                stats.columns,
            )
            btree = db.create_index(Index(f"e7_r{counter}", table_name, columns))
            rows.append((table_name, columns, estimated, btree.leaf_page_count))
            db.drop_index(f"e7_r{counter}")
        return rows

    benchmark.pedantic(run_all, iterations=1, rounds=1)

    table = ResultTable(
        "E7: Equation 1 estimate vs. real B-Tree leaf pages",
        ["table", "key columns", "estimated pages", "actual pages", "error %"],
    )
    for table_name, columns, estimated, actual in rows:
        error = abs(estimated - actual) / actual * 100 if actual else 0.0
        table.add_row(table_name, ", ".join(columns), estimated, actual, f"{error:.1f}")
    table.emit()

    for table_name, columns, estimated, actual in rows:
        error = abs(estimated - actual) / max(1, actual)
        assert error <= 0.05, (
            f"Equation 1 off by {error:.1%} on {table_name}({columns})"
        )

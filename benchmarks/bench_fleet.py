#!/usr/bin/env python
"""Fleet benchmark: divergent designs vs. the uniform baseline.

Tunes an N-replica fleet over the full 30-query SDSS survey workload
with :class:`~repro.fleet.tuner.DivergentTuner` and compares the routed
total fleet cost against the uniform-design baseline (the single best
design copied to every replica, tuned at the same per-replica budget
and priced through the same evaluator arithmetic).

Three gates, all hard (nonzero exit):

* **divergence wins**: divergent total fleet cost strictly below the
  uniform baseline;
* **convergence**: cluster→tune→route reaches its routing fixed point
  (no design changes) within the round cap;
* **determinism**: a second run with the same seed reproduces the
  per-replica designs, the routing assignment, and the total cost
  bit-for-bit.

Everything lands in ``BENCH_FLEET.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py          # full
    PYTHONPATH=src python benchmarks/bench_fleet.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.fleet.tuner import DivergentTuner  # noqa: E402
from repro.workloads.sdss import build_sdss_database, sdss_workload  # noqa: E402

N_REPLICAS = 3
MAX_ROUNDS = 8
SEED = 0


def run_fleet(catalog, workload, budget_pages, workers):
    tuner = DivergentTuner(
        catalog,
        n_replicas=N_REPLICAS,
        budget_pages=budget_pages,
        max_rounds=MAX_ROUNDS,
        seed=SEED,
        workers=workers,
    )
    started = time.perf_counter()
    result = tuner.tune(workload)
    tune_seconds = time.perf_counter() - started
    started = time.perf_counter()
    baseline = tuner.uniform_baseline(workload)
    baseline_seconds = time.perf_counter() - started
    return result, baseline, tune_seconds, baseline_seconds


def fleet_signature(result):
    """Everything the determinism gate compares, bit-for-bit."""
    return (
        tuple(replica.design_signatures for replica in result.replicas),
        tuple(sorted(result.assignment.items())),
        result.total_cost,
        tuple(rnd.total_cost for rnd in result.rounds),
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small database and serial tuning (CI-sized)",
    )
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_FLEET.json"))
    args = parser.parse_args()

    photo_rows = 3000 if args.smoke else 12000
    # A deliberately tight per-replica budget: divergence only matters
    # when one design cannot cover the whole workload, which is the
    # regime replicated fleets are tuned in. Scales with the data so
    # knapsack tightness is comparable between smoke and full runs.
    budget_pages = max(25, photo_rows // 40)
    workers = 1 if args.smoke else 2

    print(f"building SDSS database (photo_rows={photo_rows}) ...")
    db = build_sdss_database(photo_rows=photo_rows, seed=42)
    workload = sdss_workload()

    print(
        f"tuning fleet (replicas={N_REPLICAS}, budget={budget_pages} pages, "
        f"seed={SEED}) ..."
    )
    result, baseline, tune_seconds, baseline_seconds = run_fleet(
        db.catalog, workload, budget_pages, workers
    )
    # The determinism gate re-runs from a fresh catalog and caches so
    # nothing warm can mask an ordering dependence.
    repeat, _, repeat_seconds, _ = run_fleet(
        build_sdss_database(photo_rows=photo_rows, seed=42).catalog,
        workload,
        budget_pages,
        workers,
    )
    deterministic = fleet_signature(result) == fleet_signature(repeat)

    divergent_wins = result.total_cost < baseline.total_cost
    saving_pct = (
        (baseline.total_cost - result.total_cost) / baseline.total_cost * 100
        if baseline.total_cost
        else 0.0
    )

    report = {
        "benchmark": "fleet divergent designs vs uniform baseline",
        "workload": {"name": workload.name, "queries": len(list(workload))},
        "photo_rows": photo_rows,
        "n_replicas": N_REPLICAS,
        "budget_pages_per_replica": budget_pages,
        "seed": SEED,
        "divergent_total_cost": result.total_cost,
        "uniform_total_cost": baseline.total_cost,
        "divergent_wins": divergent_wins,
        "saving_pct": round(saving_pct, 3),
        "converged": result.converged,
        "rounds": [
            {
                "number": rnd.number,
                "total_cost": rnd.total_cost,
                "reassigned": rnd.reassigned,
                "cluster_sizes": list(rnd.cluster_sizes),
            }
            for rnd in result.rounds
        ],
        "replicas": [
            {
                "replica_id": replica.replica_id,
                "indexes": [
                    f"{table}({', '.join(columns)})"
                    for table, columns in replica.design_signatures
                ],
                "templates_served": sum(
                    1
                    for rid in result.assignment.values()
                    if rid == replica.replica_id
                ),
            }
            for replica in result.replicas
        ],
        "uniform_indexes": [
            f"{ix.table_name}({', '.join(ix.columns)})"
            for ix in baseline.result.indexes
        ],
        "deterministic": deterministic,
        "degraded": [str(record) for record in result.degraded],
        "timings": {
            "tune_seconds": round(tune_seconds, 3),
            "baseline_seconds": round(baseline_seconds, 3),
            "repeat_tune_seconds": round(repeat_seconds, 3),
        },
        "environment": {
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
        },
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"divergent {result.total_cost:,.1f} vs uniform "
        f"{baseline.total_cost:,.1f} ({saving_pct:.1f}% saved)"
    )
    print(
        f"converged: {result.converged} after {len(result.rounds)} round(s) "
        f"(cap {MAX_ROUNDS})"
    )
    print(f"deterministic: {deterministic}")
    print(f"wrote {args.output}")

    failed = False
    if not divergent_wins:
        print(
            "ERROR: divergent total fleet cost is not strictly below the "
            "uniform-design baseline",
            file=sys.stderr,
        )
        failed = True
    if not result.converged:
        print(
            f"ERROR: fleet tuning did not converge within {MAX_ROUNDS} rounds",
            file=sys.stderr,
        )
        failed = True
    if not deterministic:
        print(
            "ERROR: two same-seed runs produced different fleets",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

"""E6 — "Typically ILP outperforms the greedy algorithms on workloads
containing a large number of queries" (§3.4).

Sweeps workload size (subsets of the 30 SDSS queries plus generated
queries beyond 30) at a fixed tight storage budget and compares the ILP
advisor against the greedy baseline on identical candidates and INUM
pricing. The shape to reproduce: ILP ≥ greedy everywhere, with the gap
appearing as queries (and index interactions) accumulate.
"""

from __future__ import annotations

from repro.advisor.ilp_advisor import IlpIndexAdvisor
from repro.baselines.greedy import GreedyIndexAdvisor
from repro.bench.reporting import ResultTable
from repro.workloads.generator import random_workload
from repro.workloads.workload import Workload

SIZES = (5, 10, 20, 30, 45)
BUDGET_FRACTION = 0.30  # tension between large covering and small indexes


def _workload_of_size(base: Workload, db, size: int) -> Workload:
    if size <= len(base):
        return base.subset(size)
    extra = random_workload(db.catalog, size - len(base), seed=size)
    return Workload(
        queries=list(base.queries) + list(extra.queries), name=f"sdss+{size}"
    )


def test_e6_ilp_vs_greedy(sdss_db, workload, benchmark):
    db = sdss_db
    data_pages = sum(
        db.catalog.statistics(t).table.page_count for t in db.catalog.table_names
    )
    budget = max(1, int(data_pages * BUDGET_FRACTION))

    rows = []

    def run_all():
        for size in SIZES:
            wl = _workload_of_size(workload, db, size)
            ilp = IlpIndexAdvisor(db.catalog).recommend(wl, budget)
            greedy = GreedyIndexAdvisor(db.catalog, per_page=False).recommend(wl, budget)
            rows.append((size, ilp, greedy))
        return rows

    benchmark.pedantic(run_all, iterations=1, rounds=1)

    table = ResultTable(
        f"E6: ILP vs greedy index selection (budget={budget} pages)",
        ["queries", "ILP benefit", "greedy benefit", "ILP/greedy",
         "ILP speedup", "greedy speedup", "ILP nodes", "ILP time (s)",
         "greedy time (s)"],
    )
    for size, ilp, greedy in rows:
        ratio = (
            ilp.benefit / greedy.benefit if greedy.benefit > 0 else float("inf")
        )
        table.add_row(
            size,
            ilp.benefit,
            greedy.benefit,
            f"{ratio:.3f}",
            f"{ilp.speedup:.2f}x",
            f"{greedy.speedup:.2f}x",
            ilp.solver_nodes,
            ilp.elapsed_seconds,
            greedy.elapsed_seconds,
        )
    table.emit()

    for size, ilp, greedy in rows:
        assert ilp.benefit >= greedy.benefit * 0.999, (
            f"ILP must match or beat greedy at {size} queries"
        )
    # The paper's claim is about large workloads: require a strict win
    # somewhere in the upper half of the sweep.
    large = [r for r in rows if r[0] >= 20]
    assert any(ilp.benefit > greedy.benefit * 1.001 for _s, ilp, greedy in large), (
        "ILP should strictly beat greedy on some large workload"
    )

"""Shared fixtures for the experiment benchmarks.

The SDSS database is expensive to build, so it is session-scoped; each
experiment module receives the same instance plus the 30-query
workload. Scale is kept laptop-friendly (see DESIGN.md's substitution
table) — shapes, not absolute numbers, are what these benches reproduce.
"""

from __future__ import annotations

import pytest

from repro.workloads.sdss import build_sdss_database, sdss_workload

BENCH_PHOTO_ROWS = 12000


@pytest.fixture(scope="session")
def sdss_db():
    """Shared read-only database. Benches that create real indexes or
    fragments must use ``fresh_sdss_db`` instead."""
    return build_sdss_database(photo_rows=BENCH_PHOTO_ROWS, seed=42)


@pytest.fixture()
def fresh_sdss_db():
    """A private database for benches that mutate the physical design."""
    return build_sdss_database(photo_rows=BENCH_PHOTO_ROWS, seed=42)


@pytest.fixture(scope="session")
def workload():
    return sdss_workload()

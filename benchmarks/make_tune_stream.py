#!/usr/bin/env python
"""Emit a semicolon-separated SDSS statement stream for durable-tune runs.

CI's kill/restart check needs a stream long enough that a SIGKILL lands
mid-run, and the resumed ``tune --state`` invocation must then produce
exactly the design an uninterrupted run produces. The stream interleaves
survey query shapes with literal-perturbed instances — the canonicalizer
collapses them back into stable templates — shifts the query mix halfway
through so the drift detector actually fires, and sprinkles UPDATE
statements so per-table update rates reach the advisor's maintenance
model. Output is deterministic: same arguments, same bytes.

Usage::

    PYTHONPATH=src python benchmarks/make_tune_stream.py stream.sql
    PYTHONPATH=src python benchmarks/make_tune_stream.py --rounds 40 -
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.online.monitor import render_statement  # noqa: E402
from repro.sql.tokenizer import Token, TokenType, tokenize  # noqa: E402
from repro.workloads.sdss import sdss_workload  # noqa: E402

FIRST_HALF = ("q01_box_search", "q15_spec_redshift_join")
SECOND_HALF = ("q15_spec_redshift_join", "q26_field_objects")
UPDATE_EVERY = 5
UPDATE_SQL = "UPDATE photoobj SET status = 1 WHERE objid = {objid}"


def vary(sql: str, salt: int) -> str:
    """A literal-perturbed instance of ``sql`` (same template)."""
    out = []
    occurrence = 0
    for token in tokenize(sql):
        if token.type is TokenType.NUMBER and "." in token.value:
            occurrence += 1
            nudged = float(token.value) + (salt * 31 + occurrence) * 1e-7
            token = Token(TokenType.NUMBER, repr(nudged), token.position)
        out.append(token)
    return render_statement(out)


def build_stream(rounds: int) -> list[str]:
    workload = sdss_workload()
    sql_of = {
        name: workload.query(name).sql.strip()
        for name in set(FIRST_HALF) | set(SECOND_HALF)
    }
    statements = []
    for salt in range(rounds):
        names = FIRST_HALF if salt < rounds // 2 else SECOND_HALF
        for name in names:
            statements.append(vary(sql_of[name], salt))
            if len(statements) % UPDATE_EVERY == 0:
                statements.append(UPDATE_SQL.format(objid=1000 + salt))
    return statements


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", help="target file, or '-' for stdout")
    parser.add_argument("--rounds", type=int, default=30,
                        help="mix rounds; ~2.4 statements each (default 30)")
    args = parser.parse_args()
    text = ";\n".join(build_stream(args.rounds)) + ";\n"
    if args.output == "-":
        sys.stdout.write(text)
    else:
        Path(args.output).write_text(text)
        count = text.count(";")
        print(f"wrote {count} statements to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""E8 — Multicolumn vs. single-column indexes (§2, COLT comparison).

"COLT ... limits itself to only single column indexes whereas PARINDA
can suggest multicolumn indexes." Same ILP machinery, same budget, one
switch flipped: candidates restricted to single columns. The shape to
reproduce: multicolumn wins overall, and wins big on the multi-predicate
and covering-scan queries the SDSS workload is full of.
"""

from __future__ import annotations

from repro.advisor.ilp_advisor import IlpIndexAdvisor
from repro.bench.reporting import ResultTable


def test_e8_multicolumn_vs_single(sdss_db, workload, benchmark):
    db = sdss_db
    data_pages = sum(
        db.catalog.statistics(t).table.page_count for t in db.catalog.table_names
    )
    budget = max(1, int(data_pages * 0.5))

    results = {}

    def run_all():
        results["multi"] = IlpIndexAdvisor(db.catalog).recommend(workload, budget)
        results["single"] = IlpIndexAdvisor(
            db.catalog, single_column_only=True
        ).recommend(workload, budget)
        return results

    benchmark.pedantic(run_all, iterations=1, rounds=1)

    multi, single = results["multi"], results["single"]
    summary = ResultTable(
        f"E8a: multicolumn vs single-column advisor (budget={budget} pages)",
        ["advisor", "chosen", "widest key", "size pages", "cost after",
         "speedup"],
    )
    summary.add_row(
        "PARINDA (multicolumn)",
        len(multi.indexes),
        max((len(i.columns) for i in multi.indexes), default=0),
        multi.size_pages,
        multi.cost_after,
        f"{multi.speedup:.2f}x",
    )
    summary.add_row(
        "COLT-style (single col)",
        len(single.indexes),
        max((len(i.columns) for i in single.indexes), default=0),
        single.size_pages,
        single.cost_after,
        f"{single.speedup:.2f}x",
    )
    summary.emit()

    per_query = ResultTable(
        "E8b: queries where multicolumn wins hardest (top 8)",
        ["query", "single-col cost", "multicol cost", "extra speedup"],
    )
    single_by_name = {q.name: q for q in single.per_query}
    gains = []
    for entry in multi.per_query:
        other = single_by_name[entry.name]
        if entry.cost_after > 0:
            gains.append((other.cost_after / entry.cost_after, entry, other))
    gains.sort(key=lambda g: -g[0])
    for gain, entry, other in gains[:8]:
        per_query.add_row(
            entry.name, other.cost_after, entry.cost_after, f"{gain:.1f}x"
        )
    per_query.emit()

    assert multi.cost_after <= single.cost_after * 1.0001, (
        "multicolumn advisor must not lose to the single-column one"
    )
    assert multi.benefit > single.benefit, (
        "multicolumn indexes should add benefit on this workload"
    )
    assert any(len(i.columns) > 1 for i in multi.indexes), (
        "the multicolumn advisor should actually pick multicolumn indexes"
    )

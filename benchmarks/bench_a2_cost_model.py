"""A2 (ablation) — cost-model terms the what-if machinery depends on.

Two ablations, both validated against *measured* page I/O from the real
executor (not against the model itself):

* **Correlation term** — PostgreSQL interpolates index-scan heap I/O by
  the column's physical correlation. Disabling it makes the planner
  treat the clustered ``ra`` column like a random one, flipping good
  index scans into seq scans (or vice versa). We measure the actual
  pages read by each variant's plan choice.
* **Index size (Equation 1)** — the paper faults Monteiro et al. for
  assuming what-if indexes are size-zero. We emulate that bug by
  forcing leaf_pages=1 on hypothetical indexes and count how many
  access-path decisions flip against the measured-I/O winner.
"""

from __future__ import annotations

from dataclasses import replace

from repro.bench.reporting import ResultTable
from repro.catalog.schema import Index
from repro.executor.executor import execute
from repro.optimizer.config import PlannerConfig
from repro.optimizer.planner import Planner
from repro.optimizer.plans import IndexScan
from repro.sql.binder import bind
from repro.sql.parser import parse_select

# Range queries over the physically-clustered ra column: exactly where
# the correlation term decides between index and sequential scans.
RA_QUERIES = [
    "select objid from photoobj where ra between 100 and 140",
    "select objid from photoobj where ra between 100 and 180",
    "select objid from photoobj where ra between 100 and 240",
    "select dec from photoobj where ra between 50 and 130",
]


def test_a2_correlation_term(fresh_sdss_db, benchmark):
    db = fresh_sdss_db
    db.create_index(Index("a2_ra", "photoobj", ("ra",)))

    rows = []

    def run_all():
        with_corr = Planner(db.catalog, PlannerConfig(use_correlation=True))
        without = Planner(db.catalog, PlannerConfig(use_correlation=False))
        for sql in RA_QUERIES:
            bound = bind(db.catalog, parse_select(sql))
            plan_with = with_corr.plan(bound)
            plan_without = without.plan(bound)
            io_with = execute(db, plan_with).stats.total_pages_read
            io_without = execute(db, plan_without).stats.total_pages_read
            rows.append(
                (
                    sql.split("where ")[1],
                    _scan_kind(plan_with),
                    _scan_kind(plan_without),
                    io_with,
                    io_without,
                )
            )
        return rows

    benchmark.pedantic(run_all, iterations=1, rounds=1)

    table = ResultTable(
        "A2a: correlation-term ablation (measured pages read)",
        ["predicate", "scan (with corr)", "scan (without)",
         "pages (with)", "pages (without)"],
    )
    for predicate, kind_with, kind_without, io_with, io_without in rows:
        table.add_row(predicate, kind_with, kind_without, io_with, io_without)
    table.emit()

    # With correlation the planner must never read more pages, and on at
    # least one query the decision must actually differ.
    assert all(io_w <= io_wo for _p, _a, _b, io_w, io_wo in rows)
    assert any(a != b for _p, a, b, _w, _wo in rows), (
        "the ablation should flip at least one access-path decision"
    )


def _scan_kind(plan) -> str:
    for node in plan.walk():
        if isinstance(node, IndexScan):
            return "index"
    return "seq"


def test_a2_size_zero_whatif_indexes(sdss_db, workload, benchmark):
    """Monteiro-style size-zero what-if indexes mis-cost index scans."""
    from repro.catalog.sizing import estimate_index_pages
    from repro.optimizer.config import IndexInfo, RelationInfo
    from repro.whatif.session import WhatIfSession

    db = sdss_db
    result = {}

    def run_all():
        correct = WhatIfSession(db.catalog)
        correct.add_index("photoobj", ("ra", "dec", "psfmag_r"), name="w_eq1")

        # A session whose hook lies: hypothetical indexes report 1 page.
        lying = WhatIfSession(db.catalog)
        lying.add_index("photoobj", ("ra", "dec", "psfmag_r"), name="w_zero")
        base_hook = lying.config.relation_info_hook

        def zero_size_hook(cfg, catalog, table_name):
            info = base_hook(cfg, catalog, table_name)
            fixed = tuple(
                replace(ix, leaf_pages=1)
                if ix.definition.hypothetical
                else ix
                for ix in info.indexes
            )
            return RelationInfo(
                table=info.table,
                row_count=info.row_count,
                page_count=info.page_count,
                indexes=fixed,
                column_stats=info.column_stats,
            )

        lying._config = lying.config.with_hook(zero_size_hook)

        sql = "select psfmag_r from photoobj where ra between 0 and 150"
        correct_cost = correct.cost(sql)
        lying_cost = lying.cost(sql)
        result["correct"] = correct_cost
        result["lying"] = lying_cost

        table_obj = db.catalog.table("photoobj")
        stats = db.catalog.statistics("photoobj")
        result["true_pages"] = estimate_index_pages(
            table_obj,
            Index("w", "photoobj", ("ra", "dec", "psfmag_r"), hypothetical=True),
            stats.table.row_count,
            stats.columns,
        )
        return result

    benchmark.pedantic(run_all, iterations=1, rounds=1)

    table = ResultTable(
        "A2b: Equation 1 vs size-zero what-if indexes (index-only range scan)",
        ["size model", "estimated query cost", "index leaf pages assumed"],
    )
    table.add_row("Equation 1 (paper)", result["correct"], result["true_pages"])
    table.add_row("size zero (Monteiro et al.)", result["lying"], 1)
    table.emit()

    # The size-zero model must understate the cost (the paper's point:
    # "this severely affects the accuracy of the optimizer").
    assert result["lying"] < result["correct"]
    assert result["true_pages"] > 10

"""E2 — Automatic Partition Suggestion scenario (§4, Figure 2).

The GUI of scenario 2 shows: the suggested table partitions, the
average workload benefit, and the individual query benefits. This bench
regenerates those outputs, swept over the replication constraint the
DBA supplies.
"""

from __future__ import annotations

from repro.bench.reporting import ResultTable
from repro.partitioning.autopart import AutoPartAdvisor


def test_e2_autopart_suggestion(sdss_db, workload, benchmark):
    db = sdss_db

    results = {}

    def run_all():
        for limit in (0.0, 0.25, 0.5):
            advisor = AutoPartAdvisor(
                db.catalog,
                replication_limit=limit,
                max_iterations=6,
                candidates_per_iteration=16,
            )
            results[limit] = advisor.recommend(workload)
        return results

    benchmark.pedantic(run_all, iterations=1, rounds=1)

    sweep = ResultTable(
        "E2a: AutoPart speedup vs. replication constraint",
        ["replication limit", "fragments", "iterations", "what-if evals",
         "cost before", "cost after", "speedup"],
    )
    for limit, result in sorted(results.items()):
        fragment_count = sum(len(s.fragments) for s in result.schemes.values())
        sweep.add_row(
            f"{limit:.2f}",
            fragment_count,
            result.iterations,
            result.evaluations,
            result.cost_before,
            result.cost_after,
            f"{result.speedup:.2f}x",
        )
    sweep.emit()

    best = results[0.5]
    per_query = ResultTable(
        "E2b: per-query benefit of the suggested partitions (top 10)",
        ["query", "cost before", "cost after", "benefit %", "fragments used"],
    )
    ranked = sorted(best.per_query, key=lambda q: -q.benefit)[:10]
    for entry in ranked:
        pct = 0.0 if entry.cost_before == 0 else entry.benefit / entry.cost_before * 100
        per_query.add_row(
            entry.name,
            entry.cost_before,
            entry.cost_after,
            f"{pct:.1f}",
            len(entry.indexes_used),
        )
    per_query.emit()

    assert best.speedup >= 1.0
    assert best.cost_after <= best.cost_before
    assert any(q.benefit > 0 for q in best.per_query), (
        "partitioning should benefit at least some queries"
    )

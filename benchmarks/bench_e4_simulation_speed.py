"""E4 — "Simulating the structures makes the operations orders of
magnitude faster" (§1).

Compares the wall-clock time to *simulate* an index (statistics only,
Equation 1) against the time to *materialize* it (sort all rows and
pack B-Tree leaves), across table scales. The paper's claim is an
orders-of-magnitude gap that widens with data size — simulation is O(1)
in rows, building is O(N log N).
"""

from __future__ import annotations

import time

from repro.bench.reporting import ResultTable
from repro.catalog.schema import Index
from repro.whatif.session import WhatIfSession
from repro.workloads.sdss import build_sdss_database

SCALES = (2000, 8000, 32000)
INDEX_COLUMNS = ("ra", "dec", "psfmag_r")


def test_e4_simulate_vs_materialize(benchmark):
    measurements = []

    def run_all():
        for rows in SCALES:
            db = build_sdss_database(photo_rows=rows, seed=1)

            session = WhatIfSession(db.catalog)
            start = time.perf_counter()
            session.add_index("photoobj", INDEX_COLUMNS)
            simulate_seconds = time.perf_counter() - start

            index = Index("e4_real", "photoobj", INDEX_COLUMNS)
            _btree, build_seconds = db.timed_create_index(index)
            measurements.append((rows, simulate_seconds, build_seconds))
        return measurements

    benchmark.pedantic(run_all, iterations=1, rounds=1)

    table = ResultTable(
        "E4: what-if simulation vs. real index build",
        ["photoobj rows", "simulate (ms)", "materialize (ms)", "ratio"],
    )
    for rows, sim, build in measurements:
        ratio = build / sim if sim > 0 else float("inf")
        table.add_row(rows, sim * 1000, build * 1000, f"{ratio:.0f}x")
    table.emit()

    # Orders of magnitude at every scale, and the gap grows with rows.
    ratios = [build / sim for _r, sim, build in measurements]
    assert all(r > 100 for r in ratios), "simulation must be >>100x faster"
    assert ratios[-1] > ratios[0], "the gap must widen with table size"

"""E5 — INUM: "costs of millions of physical designs in the order of
minutes instead of days" (§3.4).

Two series: (a) throughput — configurations priced per second by INUM
vs. by full re-optimization, plus the projected time for one million
evaluations; (b) accuracy — INUM's estimate vs. the optimizer's answer
over random configurations (INUM's guarantee is a close upper
approximation; in this substrate it is near-exact).
"""

from __future__ import annotations

import random
import time

from repro.advisor.candidates import generate_candidates
from repro.bench.reporting import ResultTable
from repro.inum.model import InumModel

NUM_CONFIGS = 300


def _random_configs(candidates, rng, count):
    configs = []
    for _ in range(count):
        k = rng.randint(0, min(4, len(candidates)))
        configs.append(tuple(c.index for c in rng.sample(candidates, k)))
    return configs


def test_e5_inum_throughput_and_accuracy(sdss_db, workload, benchmark):
    db = sdss_db
    rng = random.Random(5)
    candidates = generate_candidates(db.catalog, workload)
    queries = [workload.query(n) for n in
               ("q01_box_search", "q15_spec_redshift_join", "q26_field_objects")]

    results = {}

    def run_all():
        for query in queries:
            bound = query.bind(db.catalog)
            build_start = time.perf_counter()
            model = InumModel(db.catalog, bound)
            build_seconds = time.perf_counter() - build_start

            relevant = [c for c in candidates if any(
                c.index.table_name == e.table.name for e in bound.rels)]
            configs = _random_configs(relevant, rng, NUM_CONFIGS)

            start = time.perf_counter()
            estimates = [model.estimate(cfg) for cfg in configs]
            inum_seconds = time.perf_counter() - start

            start = time.perf_counter()
            truths = [model.optimizer_cost(cfg) for cfg in configs[:40]]
            optimizer_seconds = (time.perf_counter() - start) / 40 * NUM_CONFIGS

            errors = [
                abs(est - truth) / truth
                for est, truth in zip(estimates[:40], truths)
                if truth > 0
            ]
            results[query.name] = (
                model, build_seconds, inum_seconds, optimizer_seconds, errors
            )
        return results

    benchmark.pedantic(run_all, iterations=1, rounds=1)

    table = ResultTable(
        "E5: INUM vs. full optimization (300 configurations per query)",
        ["query", "cache entries", "optimizer calls", "INUM (ms)",
         "optimizer (ms)", "speedup", "1M configs (INUM)", "1M configs (opt)",
         "max error %"],
    )
    for name, (model, build_s, inum_s, opt_s, errors) in results.items():
        speedup = opt_s / inum_s if inum_s > 0 else float("inf")
        per_config_inum = inum_s / NUM_CONFIGS
        per_config_opt = opt_s / NUM_CONFIGS
        table.add_row(
            name,
            model.stats.cache_entries,
            model.stats.optimizer_calls,
            inum_s * 1000,
            opt_s * 1000,
            f"{speedup:.0f}x",
            _human_time(per_config_inum * 1e6),
            _human_time(per_config_opt * 1e6),
            f"{max(errors) * 100:.2f}",
        )
    table.emit()

    for name, (_m, _b, inum_s, opt_s, errors) in results.items():
        assert opt_s / inum_s > 10, f"INUM must be >10x faster on {name}"
        assert max(errors) < 0.05, f"INUM error must stay under 5% on {name}"


def _human_time(seconds: float) -> str:
    if seconds < 120:
        return f"{seconds:.0f}s"
    if seconds < 7200:
        return f"{seconds / 60:.0f}min"
    if seconds < 172800:
        return f"{seconds / 3600:.1f}h"
    return f"{seconds / 86400:.1f}d"

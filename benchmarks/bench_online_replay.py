#!/usr/bin/env python
"""Deterministic replay harness for the online tuning subsystem.

Replays an SDSS statement stream through :class:`OnlineTuner` three
ways and checks the subsystem's core claims:

* **drift replay** — a pre-shift query mix abruptly replaced by a
  post-shift mix mid-stream (literals varied per statement, so template
  canonicalization is doing real work). The tuner must detect the
  shift, and its final recommendation must be **bit-identical** to the
  batch ``IlpIndexAdvisor`` run on the same window snapshot; its design
  must also match the batch advisor's answer for the plain post-shift
  workload.
* **stable replay** — the same mix throughout. After the warmup advise
  there must be zero drift events and zero re-advises.
* **bounded cache** — the drift replay under a small ``CostCache``
  bound; every section's peak entry count must respect the bound, with
  evictions actually occurring.
* **background replay** — the drift stream through a ``background=True``
  tuner: every ``observe()`` must return fast even while a re-advise is
  in flight (flat observe latency), and after ``drain()`` the full
  resumable state must be bit-identical to the synchronous run.
* **restart replay** — the stream is cut mid-way, the tuner state is
  round-tripped through JSON (``save_state``/``restore_state``), and a
  fresh tuner finishes the stream; its end state must be bit-identical
  to the uninterrupted run.

The drift replay additionally asserts the steady-state warm path: a
forced re-advise at end of stream (every window template already
modeled) must not miss the INUM snapshot cache — i.e. no raw optimizer
calls.

Usage::

    PYTHONPATH=src python benchmarks/bench_online_replay.py          # full
    PYTHONPATH=src python benchmarks/bench_online_replay.py --smoke  # CI

Writes ``BENCH_ONLINE.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.advisor.ilp_advisor import IlpIndexAdvisor  # noqa: E402
from repro.catalog.schema import index_signature  # noqa: E402
from repro.online.monitor import render_statement  # noqa: E402
from repro.online.tuner import OnlineTuner  # noqa: E402
from repro.sql.tokenizer import Token, TokenType, tokenize  # noqa: E402
from repro.workloads.sdss import build_sdss_database, sdss_workload  # noqa: E402
from repro.workloads.workload import Workload  # noqa: E402

PRE_SHIFT = ("q01_box_search", "q05_star_colors", "q15_spec_redshift_join")
POST_SHIFT = ("q11_qso_color_cut", "q17_qso_spectra", "q26_field_objects")
BUDGET_PAGES = 500
WINDOW = 30
CHECK_INTERVAL = 15
BUILD_COST_PER_PAGE = 0.5
CACHE_BOUND = 16


def vary_literals(sql: str, salt: int) -> str:
    """A literal-varied instance of ``sql``, same template.

    Every float literal is nudged by a tiny salt-dependent epsilon —
    enough that no two stream statements are textually equal, small
    enough that the statement stays semantically sensible. Integer
    literals are left alone (they are often LIMITs or categorical
    codes). Deterministic in (sql, salt).
    """
    out: list[Token] = []
    occurrence = 0
    for token in tokenize(sql):
        if token.type is TokenType.NUMBER and "." in token.value:
            occurrence += 1
            nudged = float(token.value) + (salt * 31 + occurrence) * 1e-7
            token = Token(TokenType.NUMBER, repr(nudged), token.position)
        out.append(token)
    return render_statement(out)


def make_stream(
    names: tuple[str, ...], rounds: int, salt0: int = 0
) -> list[str]:
    workload = sdss_workload()
    sql_of = {name: workload.query(name).sql.strip() for name in names}
    stream = []
    for round_no in range(rounds):
        for name in names:
            stream.append(vary_literals(sql_of[name], salt0 + round_no))
    return stream


def signature(result) -> tuple:
    return (
        tuple((ix.table_name, ix.columns) for ix in result.indexes),
        round(result.cost_before, 6),
        round(result.cost_after, 6),
        tuple(
            (q.name, round(q.cost_before, 6), round(q.cost_after, 6))
            for q in result.per_query
        ),
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small database and shorter streams (CI)",
    )
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_ONLINE.json"))
    args = parser.parse_args()

    photo_rows = 3000 if args.smoke else 12000
    pre_rounds = 12 if args.smoke else 30
    post_rounds = 25 if args.smoke else 60

    print(f"building SDSS database (photo_rows={photo_rows}) ...")
    db = build_sdss_database(photo_rows=photo_rows, seed=42)
    checks: list[tuple[str, bool, str]] = []

    def check(name: str, ok: bool, detail: str) -> None:
        checks.append((name, bool(ok), detail))
        print(f"  [{'ok' if ok else 'FAIL'}] {name}: {detail}")

    # ------------------------------------------------------------------
    # 1. Drift replay: pre-shift mix, then an abrupt post-shift mix.
    print("drift replay ...")
    stream = make_stream(PRE_SHIFT, pre_rounds) + make_stream(
        POST_SHIFT, post_rounds, salt0=1000
    )
    tuner = OnlineTuner(
        db.catalog,
        budget_pages=BUDGET_PAGES,
        window_size=WINDOW,
        check_interval=CHECK_INTERVAL,
        build_cost_per_page=BUILD_COST_PER_PAGE,
    )
    started = time.perf_counter()
    tuner.run(stream)
    drift_seconds = time.perf_counter() - started
    counts = dict(tuner.event_counts)

    check(
        "shift detected",
        counts["drifted"] >= 1,
        f"{counts['drifted']} drift event(s), "
        f"{counts['re-advised']} re-advise(s)",
    )
    check(
        "templates canonicalized",
        len(tuner.monitor.templates) == len(PRE_SHIFT) + len(POST_SHIFT),
        f"{tuner.monitor.observed} varied statements -> "
        f"{len(tuner.monitor.templates)} templates",
    )

    # Steady state at end of stream: every template in the window was
    # modeled by the last drift re-advise, so a forced re-advise must be
    # served entirely from cached INUM snapshots — zero optimizer calls.
    inum_misses_before = tuner.cache.counters["inum"].misses
    final = tuner.readvise(reason="final")
    inum_misses_after = tuner.cache.counters["inum"].misses
    check(
        "warm re-advise makes no optimizer calls",
        inum_misses_after == inum_misses_before,
        f"inum snapshot misses {inum_misses_before} -> {inum_misses_after}",
    )

    # The batch advisor on the identical window snapshot must agree
    # bit-for-bit (indexes, costs, per-query benefits).
    batch_snapshot = IlpIndexAdvisor(db.catalog).recommend(
        tuner.monitor.snapshot(), BUDGET_PAGES
    )
    check(
        "bit-identical to batch on the window snapshot",
        signature(final) == signature(batch_snapshot),
        f"{len(final.indexes)} indexes, cost_after {final.cost_after:,.0f}",
    )

    # And the adopted design must be the batch answer for the plain
    # post-shift workload (the window holds only post-shift templates).
    post_workload = Workload(
        queries=[sdss_workload().query(name) for name in POST_SHIFT],
        name="post-shift",
    )
    batch_post = IlpIndexAdvisor(db.catalog).recommend(
        post_workload, BUDGET_PAGES
    )
    # The *adopted* design, not just the last proposal: drop-only
    # switches are free, so after the final re-advise the standing
    # design must have shed every pre-shift index.
    tuner_signatures = {index_signature(ix) for ix in tuner.design}
    batch_signatures = {index_signature(ix) for ix in batch_post.indexes}
    if tuner_signatures == batch_signatures:
        detail = ", ".join(
            "{}({})".format(table, ", ".join(columns))
            for table, columns in sorted(batch_signatures)
        )
    else:
        detail = (
            f"tuner {sorted(tuner_signatures)} != "
            f"batch {sorted(batch_signatures)}"
        )
    check(
        "converged to the batch post-shift design",
        tuner_signatures == batch_signatures,
        detail,
    )

    # ------------------------------------------------------------------
    # 2. Stable replay: no drift, no re-advising after warmup.
    print("stable replay ...")
    stable = OnlineTuner(
        db.catalog,
        budget_pages=BUDGET_PAGES,
        window_size=WINDOW,
        check_interval=CHECK_INTERVAL,
        build_cost_per_page=BUILD_COST_PER_PAGE,
    )
    stable.run(make_stream(PRE_SHIFT, pre_rounds + post_rounds))
    check(
        "stable stream stays quiet",
        stable.event_counts["drifted"] == 0 and stable.readvise_count == 1,
        f"{stable.event_counts['drifted']} drift(s), "
        f"{stable.readvise_count} re-advise(s) (warmup only)",
    )

    # ------------------------------------------------------------------
    # 3. Bounded cache: the same drift replay must respect a small bound.
    print("bounded-cache replay ...")
    bounded = OnlineTuner(
        db.catalog,
        budget_pages=BUDGET_PAGES,
        window_size=WINDOW,
        check_interval=CHECK_INTERVAL,
        build_cost_per_page=BUILD_COST_PER_PAGE,
        cache_max_entries=CACHE_BOUND,
    )
    bounded.run(stream)
    stats = bounded.cache.stats()
    peak = {section: entry["peak_size"] for section, entry in stats.items()}
    evictions = sum(entry["evictions"] for entry in stats.values())
    check(
        "cache bound respected",
        all(size <= CACHE_BOUND for size in peak.values()) and evictions > 0,
        f"peak sizes {peak}, {evictions} eviction(s), bound {CACHE_BOUND}",
    )

    # ------------------------------------------------------------------
    # 4. Background replay: observe() must stay flat while an advise is
    # in flight, and the drained end state must be bit-identical to the
    # synchronous run over the same stream.
    #
    # On a real system a re-advise is dominated by optimizer round-trips
    # (milliseconds of I/O per what-if call, GIL released); the in-process
    # reproduction advises in ~20ms of pure CPU, which is smaller than
    # ordinary GIL scheduling jitter and would make the latency
    # comparison meaningless. Both tuners therefore get the same fixed
    # simulated optimizer latency added to every recommend() — a sleep
    # changes no results, only restores the latency regime the
    # non-blocking design targets.
    print("background replay ...")
    ADVISE_LATENCY = 0.25  # seconds per re-advise, both tuners

    def add_advise_latency(tuner_under_test) -> None:
        real = tuner_under_test._advisor.recommend

        def slow_recommend(*rec_args, **rec_kwargs):
            time.sleep(ADVISE_LATENCY)
            return real(*rec_args, **rec_kwargs)

        tuner_under_test._advisor.recommend = slow_recommend

    def replay_timed(tuner_under_test) -> list[float]:
        latencies = []
        for sql in stream:
            t0 = time.perf_counter()
            tuner_under_test.observe(sql)
            latencies.append(time.perf_counter() - t0)
        tuner_under_test.drain()
        return latencies

    sync_ref = OnlineTuner(
        db.catalog,
        budget_pages=BUDGET_PAGES,
        window_size=WINDOW,
        check_interval=CHECK_INTERVAL,
        build_cost_per_page=BUILD_COST_PER_PAGE,
    )
    add_advise_latency(sync_ref)
    sync_latencies = replay_timed(sync_ref)
    background = OnlineTuner(
        db.catalog,
        budget_pages=BUDGET_PAGES,
        window_size=WINDOW,
        check_interval=CHECK_INTERVAL,
        build_cost_per_page=BUILD_COST_PER_PAGE,
        background=True,
        max_pending=len(stream),  # generous: no coalescing in this run
    )
    add_advise_latency(background)
    bg_latencies = replay_timed(background)
    max_sync = max(sync_latencies)
    max_bg = max(bg_latencies)
    check(
        "background observe() never blocks on an advise",
        max_bg < 0.2 * max_sync,
        f"max observe {max_bg * 1000:.2f}ms background vs "
        f"{max_sync * 1000:.2f}ms sync (advise inline)",
    )
    identical_state = background.save_state() == sync_ref.save_state()
    check(
        "drained background run bit-identical to sync",
        identical_state and background.coalesced == 0,
        f"{background.readvise_count} re-advise(s), "
        f"{background.coalesced} coalesced, state equal: {identical_state}",
    )
    background.close()

    # ------------------------------------------------------------------
    # 5. Restart replay: kill mid-stream, resume from saved state, and
    # end bit-identical to the uninterrupted run.
    print("restart replay ...")
    cut = len(stream) // 2
    first_life = OnlineTuner(
        db.catalog,
        budget_pages=BUDGET_PAGES,
        window_size=WINDOW,
        check_interval=CHECK_INTERVAL,
        build_cost_per_page=BUILD_COST_PER_PAGE,
    )
    for sql in stream[:cut]:
        first_life.observe(sql)
    # Through actual JSON, exactly as the CLI's --state file travels.
    saved_state = json.loads(json.dumps(first_life.save_state()))
    second_life = OnlineTuner(
        db.catalog,
        budget_pages=BUDGET_PAGES,
        window_size=WINDOW,
        check_interval=CHECK_INTERVAL,
        build_cost_per_page=BUILD_COST_PER_PAGE,
    )
    second_life.restore_state(saved_state)
    for sql in stream[cut:]:
        second_life.observe(sql)
    restart_identical = second_life.save_state() == sync_ref.save_state()
    resumed_design = ", ".join(
        "{}({})".format(ix.table_name, ", ".join(ix.columns))
        for ix in second_life.design
    )
    check(
        "restart resumes bit-identically",
        restart_identical,
        f"cut at {cut}/{len(stream)}; resumed design [{resumed_design}]",
    )

    # ------------------------------------------------------------------
    report = {
        "benchmark": "online tuning replay",
        "photo_rows": photo_rows,
        "budget_pages": BUDGET_PAGES,
        "window_size": WINDOW,
        "check_interval": CHECK_INTERVAL,
        "stream": {
            "pre_shift": list(PRE_SHIFT),
            "post_shift": list(POST_SHIFT),
            "statements": len(stream),
        },
        "drift_replay": {
            "seconds": round(drift_seconds, 3),
            "events": counts,
            "final_design": [
                f"{ix.table_name}({', '.join(ix.columns)})"
                for ix in final.indexes
            ],
            "cache": tuner.cache.stats(),
        },
        "stable_replay": {"events": dict(stable.event_counts)},
        "bounded_replay": {
            "bound": CACHE_BOUND,
            "peak_sizes": peak,
            "evictions": evictions,
        },
        "background_replay": {
            "max_observe_ms_sync": round(max_sync * 1000, 3),
            "max_observe_ms_background": round(max_bg * 1000, 3),
            "mean_observe_ms_background": round(
                sum(bg_latencies) / len(bg_latencies) * 1000, 4
            ),
            "coalesced": background.coalesced,
            "state_identical_to_sync": identical_state,
        },
        "restart_replay": {
            "cut": cut,
            "statements": len(stream),
            "state_identical_to_uninterrupted": restart_identical,
        },
        "checks": [
            {"name": name, "ok": ok, "detail": detail}
            for name, ok, detail in checks
        ],
        "environment": {
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
        },
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    failed = [name for name, ok, _ in checks if not ok]
    print(f"wrote {args.output}")
    if failed:
        print(f"ERROR: {len(failed)} check(s) failed: {failed}", file=sys.stderr)
        return 1
    print(f"all {len(checks)} checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

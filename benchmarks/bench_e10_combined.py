"""E10 — the full PARINDA pipeline: PARtitions + INDexes together.

The tool's name promises both advisors; this bench runs them in the
intended composition (AutoPart first, then the ILP index advisor over
the rewritten, partitioned workload) and shows the combination beating
either advisor alone — the overall value proposition the demo's three
scenarios build up to.
"""

from __future__ import annotations

from repro.bench.reporting import ResultTable
from repro.core.parinda import Parinda


def test_e10_combined_pipeline(sdss_db, workload, benchmark):
    db = sdss_db
    parinda = Parinda(db)
    data_pages = sum(
        db.catalog.statistics(t).table.page_count for t in db.catalog.table_names
    )
    budget = data_pages  # 1x data size of extra storage

    results = {}

    def run_all():
        results["indexes"] = parinda.suggest_indexes(workload, budget_pages=budget)
        results["combined"] = parinda.suggest_combined(
            workload, budget_pages=budget, replication_limit=0.3
        )
        return results

    benchmark.pedantic(run_all, iterations=1, rounds=1)

    indexes = results["indexes"]
    combined = results["combined"]
    table = ResultTable(
        f"E10: advisors alone vs the full pipeline (budget={budget} pages)",
        ["design", "cost before", "cost after", "speedup"],
    )
    table.add_row(
        "indexes only", indexes.cost_before, indexes.cost_after,
        f"{indexes.speedup:.2f}x",
    )
    table.add_row(
        "partitions only",
        combined.partitions.cost_before,
        combined.partitions.cost_after,
        f"{combined.partitions.speedup:.2f}x",
    )
    table.add_row(
        "partitions + indexes",
        combined.cost_before,
        combined.cost_after,
        f"{combined.speedup:.2f}x",
    )
    table.emit()

    assert combined.cost_after <= indexes.cost_after * 1.001, (
        "the combination must not lose to indexes alone"
    )
    assert combined.cost_after <= combined.partitions.cost_after, (
        "the combination must not lose to partitions alone"
    )
    assert combined.speedup > 1.2

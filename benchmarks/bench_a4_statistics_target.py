"""A4 (ablation) — statistics resolution vs. estimation quality.

The entire what-if edifice rests on the optimizer's statistics being
good enough. This ablation sweeps the ANALYZE target (MCV slots +
histogram bins, PostgreSQL's ``default_statistics_target``) and
measures row-estimate quality on the 30-query workload as the median
and worst q-error (max(est/actual, actual/est)) of each query's
root-level row estimate, with the executor's true row counts as ground
truth.
"""

from __future__ import annotations

from repro.bench.reporting import ResultTable
from repro.executor.executor import execute
from repro.optimizer.planner import Planner
from repro.sql.binder import bind
from repro.workloads.sdss import build_sdss_database, sdss_workload

TARGETS = (2, 5, 10, 25, 100)
ROWS = 8000


def _q_error(estimated: float, actual: float) -> float:
    estimated = max(estimated, 1.0)
    actual = max(float(actual), 1.0)
    return max(estimated / actual, actual / estimated)


def test_a4_statistics_target_sweep(benchmark):
    workload = sdss_workload()
    rows = []

    def run_all():
        db = build_sdss_database(photo_rows=ROWS, seed=42)
        # Ground-truth output cardinalities (statistics-independent).
        truths = {}
        planner = Planner(db.catalog)
        for query in workload:
            bound = bind(db.catalog, query.parse())
            truths[query.name] = len(execute(db, planner.plan(bound)).rows)

        for target in TARGETS:
            db.analyze(target=target)
            planner = Planner(db.catalog)
            errors = []
            for query in workload:
                bound = bind(db.catalog, query.parse())
                plan = planner.plan(bound)
                errors.append(_q_error(plan.rows, truths[query.name]))
            errors.sort()
            rows.append(
                (
                    target,
                    errors[len(errors) // 2],
                    errors[int(len(errors) * 0.9)],
                    errors[-1],
                )
            )
        return rows

    benchmark.pedantic(run_all, iterations=1, rounds=1)

    table = ResultTable(
        f"A4: ANALYZE target vs row-estimate q-error (30 queries, {ROWS} rows)",
        ["statistics target", "median q-error", "p90 q-error", "worst q-error"],
    )
    for target, median, p90, worst in rows:
        table.add_row(target, f"{median:.2f}", f"{p90:.2f}", f"{worst:.1f}")
    table.emit()

    by_target = {r[0]: r for r in rows}
    # Full-resolution statistics must estimate well...
    assert by_target[100][1] < 1.5, "median q-error at target=100 should be small"
    # ... and resolution has to matter: coarse stats are measurably worse
    # in the tail.
    assert by_target[2][2] >= by_target[100][2], (
        "p90 q-error should not improve when statistics get coarser"
    )
